#include "service/process_supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include <algorithm>

#include "common/strings.h"
#include "net/io.h"
#include "service/placement.h"
#include "service/supervisor_manifest.h"
#include "sparksim/spark_conf.h"

namespace sparktune {
namespace {

// Reap budget for a worker that was asked to exit gracefully: poll this
// many times, SleepMs(kReapPollMs) apart, before escalating to SIGKILL.
constexpr int kReapPolls = 200;
constexpr int kReapPollMs = 10;

Json EmptyBody() { return Json::Object(); }

}  // namespace

ProcessSupervisor::ProcessSupervisor(ProcessSupervisorOptions options)
    : options_(std::move(options)) {
  if (options_.num_shards < 1) options_.num_shards = 1;
  if (options_.manifest_path.empty() && !options_.socket_dir.empty()) {
    options_.manifest_path = options_.socket_dir + "/supervisor.manifest";
  }
  workers_.resize(static_cast<size_t>(options_.num_shards));
  for (Worker& w : workers_) {
    w.health = ShardHealthMonitor(options_.health);
  }
}

ProcessSupervisor::~ProcessSupervisor() { (void)Shutdown(); }

std::string ProcessSupervisor::socket_path(int shard) const {
  return StrFormat("%s/shard-%d.sock", options_.socket_dir.c_str(), shard);
}

int ProcessSupervisor::PreferredShard(const std::string& id) const {
  // Static placement over ALL shard indices, dead or alive: a task's home
  // never moves, so a downed shard parks its tasks instead of migrating
  // them (migration would need the evaluator state the dead process took
  // with it; parking + checkpoint recovery keeps trajectories exact).
  return placement::Rendezvous(id, num_shards(), [](int) { return true; });
}

Status ProcessSupervisor::InitSpace() {
  if (space_ready_) return Status::OK();
  SPARKTUNE_ASSIGN_OR_RETURN(cluster,
                             ClusterFromName(options_.service.cluster));
  cluster_ = cluster;
  space_ = BuildSparkSpace(cluster_);
  space_ready_ = true;
  return Status::OK();
}

std::unique_ptr<net::ShardClient> ProcessSupervisor::MakeClient(
    int shard) const {
  net::ShardClientOptions copts;
  copts.socket_path = socket_path(shard);
  copts.connect_timeout_ms = options_.connect_timeout_ms;
  copts.call_timeout_ms = options_.call_timeout_ms;
  copts.reconnect = options_.reconnect;
  copts.backoff_unit_ms = options_.backoff_unit_ms;
  copts.chaos.seed = options_.chaos_seed;
  copts.chaos.fault_prob = options_.chaos_prob;
  copts.chaos.shard = shard;
  copts.chaos.salt = net::kChaosClientSalt;
  copts.chaos.arm_after_exchanges = options_.chaos_arm_exchanges;
  return std::make_unique<net::ShardClient>(copts);
}

Status ProcessSupervisor::SpawnWorker(int shard) {
  Worker& w = workers_[static_cast<size_t>(shard)];
  if (w.pid > 0) return Status::FailedPrecondition("worker already spawned");
  if (options_.shardd_path.empty()) {
    return Status::InvalidArgument("shardd_path is empty");
  }
  const std::string path = socket_path(shard);
  std::vector<std::string> args;
  args.push_back(options_.shardd_path);
  args.push_back("--socket");
  args.push_back(path);
  if (options_.chaos_workers && options_.chaos_seed != 0 &&
      options_.chaos_prob > 0) {
    args.push_back(StrFormat("--shard=%d", shard));
    args.push_back(StrFormat("--chaos_seed=%llu",
                             static_cast<unsigned long long>(
                                 options_.chaos_seed)));
    args.push_back(StrFormat("--chaos_prob=%.17g", options_.chaos_prob));
    args.push_back(StrFormat("--chaos_arm=%d",
                             options_.chaos_arm_exchanges));
  }
  pid_t pid = fork();
  if (pid < 0) {
    return Status::Internal(
        StrFormat("fork failed: %s", std::strerror(errno)));
  }
  if (pid == 0) {
    // Child. execv only returns on failure; _exit (not in the no-abort
    // set) avoids running the parent's atexit/static destructors twice.
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(options_.shardd_path.c_str(), argv.data());
    _exit(127);
  }
  w.pid = pid;
  w.client = MakeClient(shard);
  w.reconnect = net::ReconnectState{};
  return Status::OK();
}

Status ProcessSupervisor::ConfigureWorker(int shard) {
  Worker& w = workers_[static_cast<size_t>(shard)];
  Json body = Json::Object();
  body.Set("config", ServiceConfigToJson(options_.service));
  body.Set("epoch", Json::Number(static_cast<double>(w.epoch)));
  SPARKTUNE_RETURN_IF_ERROR(
      w.client->Call(net::MsgKind::kConfigure, body).status());
  w.alive = true;
  w.reconnect.RecordSuccess();
  return Status::OK();
}

Status ProcessSupervisor::Start() {
  SPARKTUNE_RETURN_IF_ERROR(InitSpace());
  for (int s = 0; s < num_shards(); ++s) {
    Worker& w = workers_[static_cast<size_t>(s)];
    if (w.alive) continue;
    if (w.epoch < 1) w.epoch = 1;
    if (w.pid <= 0) {
      SPARKTUNE_RETURN_IF_ERROR(SpawnWorker(s));
    }
    Status st = w.client->Connect();
    if (st.ok()) st = ConfigureWorker(s);
    if (!st.ok()) {
      return Status::Unavailable(StrFormat(
          "shard %d failed to start: %s", s, st.message().c_str()));
    }
  }
  SaveManifest();
  return Status::OK();
}

Status ProcessSupervisor::RegisterTask(const std::string& id,
                                       const SimTaskSpec& spec) {
  SPARKTUNE_RETURN_IF_ERROR(InitSpace());
  if (index_.count(id) > 0) {
    return Status::InvalidArgument("task already registered: " + id);
  }
  const int shard = PreferredShard(id);
  if (shard < 0) return Status::FailedPrecondition("no shards configured");
  Worker& w = workers_[static_cast<size_t>(shard)];
  if (!w.alive || !w.client->connected()) {
    return Status::Unavailable(StrFormat(
        "home shard %d is down; register after RestartShard", shard));
  }
  Json body = Json::Object();
  body.Set("id", Json::Str(id));
  body.Set("spec", SimTaskSpecToJson(spec));
  auto response = w.client->Call(net::MsgKind::kRegisterTask, body);
  if (!response.ok()) {
    if (response.status().code() == Status::Code::kUnavailable) {
      MarkWorkerDown(shard);
    }
    return response.status();
  }
  TaskEntry entry;
  entry.id = id;
  entry.spec = spec;
  entry.shard = shard;
  index_.emplace(id, tasks_.size());
  tasks_.push_back(std::move(entry));
  SaveManifest();
  return Status::OK();
}

void ProcessSupervisor::ReapWorker(int shard, bool block) {
  Worker& w = workers_[static_cast<size_t>(shard)];
  if (w.pid <= 0) return;
  int status = 0;
  pid_t got = waitpid(w.pid, &status, WNOHANG);
  if (got == 0 && block) {
    for (int i = 0; i < kReapPolls && got == 0; ++i) {
      net::SleepMs(kReapPollMs);
      got = waitpid(w.pid, &status, WNOHANG);
    }
    if (got == 0) {
      // Refused to exit within the budget: escalate.
      kill(w.pid, SIGKILL);
      got = waitpid(w.pid, &status, 0);
    }
  }
  if (got == w.pid || (got < 0 && errno == ECHILD)) {
    w.pid = -1;
    w.alive = false;
    if (w.client) w.client->Disconnect();
  }
}

void ProcessSupervisor::MarkWorkerDown(int shard) {
  Worker& w = workers_[static_cast<size_t>(shard)];
  ++stats_.worker_failures;
  if (w.client) w.client->Disconnect();
  w.reconnect.RecordFailure(options_.reconnect);
  w.health.RecordFailure(stats_.ticks);
  // If the process actually exited, reap it now; a transient transport
  // failure of a live process keeps alive=true and lets the per-tick
  // reconnect pacing redial.
  ReapWorker(shard, /*block=*/false);
  if (w.pid <= 0) w.health.RecordDeath(stats_.ticks);
}

std::vector<Result<Observation>> ProcessSupervisor::Tick() {
  // Tick number first: every health/backoff decision below is phrased in
  // the current tick so the whole state machine is tick-deterministic.
  ++stats_.ticks;
  const long long tick = stats_.ticks;

  // Self-healing: respawn dead shards on the health monitor's backoff
  // schedule (off unless options_.health.auto_restart).
  if (options_.health.auto_restart) {
    for (int s = 0; s < num_shards(); ++s) {
      Worker& w = workers_[static_cast<size_t>(s)];
      if (w.alive || w.pid > 0) continue;
      if (!w.health.ShouldAttemptRestart(tick)) continue;
      Status st = RestartShardInternal(s);
      if (st.ok()) {
        w.health.RecordRestart(tick);
        ++stats_.auto_restarts;
      } else {
        w.health.RecordRestartFailure(tick);
      }
    }
  }

  // Redial transiently-disconnected live workers, paced by ReconnectState
  // (RetryPolicy::BackoffPeriods in the tick domain, net/client.h).
  for (int s = 0; s < num_shards(); ++s) {
    Worker& w = workers_[static_cast<size_t>(s)];
    if (!w.alive || w.pid <= 0 || w.client->connected()) continue;
    if (!w.reconnect.ShouldAttempt()) continue;
    Status st = w.client->ConnectOnce();
    if (st.ok()) {
      w.reconnect.RecordSuccess();
    } else {
      w.reconnect.RecordFailure(options_.reconnect);
      ReapWorker(s, /*block=*/false);
    }
  }

  // Heartbeat probes: one kPing per connected shard on the policy cadence.
  // A pong from a different epoch means a stale incarnation answered the
  // socket — treat it as a failed probe and take the shard down.
  for (int s = 0; s < num_shards(); ++s) {
    Worker& w = workers_[static_cast<size_t>(s)];
    if (!w.alive || !w.client || !w.client->connected()) continue;
    if (!w.health.ShouldProbe(tick)) continue;
    ++stats_.probes;
    auto pong = w.client->Call(net::MsgKind::kPing, EmptyBody());
    bool healthy = pong.ok();
    if (healthy) {
      const long long reported =
          static_cast<long long>(pong->GetNumberOr("epoch", 0));
      if (reported != 0 && reported != w.epoch) healthy = false;
    }
    if (healthy) {
      w.health.RecordSuccess();
    } else {
      ++stats_.probe_failures;
      MarkWorkerDown(s);
    }
  }

  // Batch per shard in registration order.
  std::vector<std::vector<std::string>> batches(workers_.size());
  std::vector<std::vector<size_t>> positions(workers_.size());
  for (size_t i = 0; i < tasks_.size(); ++i) {
    const TaskEntry& task = tasks_[i];
    if (task.shard < 0) continue;
    batches[static_cast<size_t>(task.shard)].push_back(task.id);
    positions[static_cast<size_t>(task.shard)].push_back(i);
  }

  // Pipelined exchange: write every shard's kExecute before reading any
  // response, so shard batches execute concurrently across processes.
  std::vector<bool> sent(workers_.size(), false);
  for (size_t s = 0; s < workers_.size(); ++s) {
    Worker& w = workers_[s];
    if (batches[s].empty() || !w.alive || !w.client->connected()) continue;
    Json ids = Json::Array();
    for (const std::string& id : batches[s]) ids.Append(Json::Str(id));
    Json body = Json::Object();
    body.Set("ids", std::move(ids));
    // Fencing token: a stale incarnation that somehow still owns the
    // socket answers this with kFailedPrecondition instead of executing.
    body.Set("epoch", Json::Number(static_cast<double>(w.epoch)));
    Status st = w.client->Send(net::MsgKind::kExecute, body,
                               options_.call_timeout_ms);
    if (st.ok()) {
      sent[s] = true;
    } else {
      MarkWorkerDown(static_cast<int>(s));
    }
  }

  std::vector<std::optional<Result<Observation>>> slots(tasks_.size());
  for (size_t s = 0; s < workers_.size(); ++s) {
    if (!sent[s]) continue;
    Worker& w = workers_[s];
    auto response =
        w.client->Receive(net::MsgKind::kExecute, options_.call_timeout_ms);
    bool usable = response.ok();
    const Json* jslots = usable ? response->Get("slots") : nullptr;
    const Json* jperiods = usable ? response->Get("periods") : nullptr;
    usable = usable && jslots != nullptr && jslots->is_array() &&
             jperiods != nullptr && jperiods->is_array() &&
             jslots->size() == batches[s].size() &&
             jperiods->size() == batches[s].size();
    if (!usable) {
      MarkWorkerDown(static_cast<int>(s));
      continue;  // the batch parks below
    }
    w.health.RecordSuccess();
    for (size_t k = 0; k < batches[s].size(); ++k) {
      slots[positions[s][k]] = ResultSlotFromJson(jslots->at(k), space_);
      // Worker period clocks are authoritative but never rewind: adopt
      // max(acked, reported). (A worker can execute + checkpoint and die
      // before the response is read — reported runs AHEAD; a duplicated
      // response frame under chaos can replay an OLDER clock.)
      const long long reported =
          static_cast<long long>(jperiods->at(k).AsNumber());
      if (reported > tasks_[positions[s][k]].periods) {
        tasks_[positions[s][k]].periods = reported;
      }
    }
  }

  std::vector<Result<Observation>> results;
  results.reserve(tasks_.size());
  for (size_t i = 0; i < tasks_.size(); ++i) {
    if (slots[i].has_value()) {
      results.push_back(*std::move(slots[i]));
    } else {
      ++stats_.parked_slots;
      results.push_back(Status::Unavailable(StrFormat(
          "task parked: shard %d down: %s", tasks_[i].shard,
          tasks_[i].id.c_str())));
    }
  }
  SaveManifest();
  return results;
}

Status ProcessSupervisor::KillShard(int shard) {
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument("no such shard");
  }
  Worker& w = workers_[static_cast<size_t>(shard)];
  if (w.pid <= 0) return Status::FailedPrecondition("shard already dead");
  // SIGKILL: no flush, no handler — in-memory state dies mid-whatever,
  // exactly like a machine loss. Only repository files survive.
  kill(w.pid, SIGKILL);
  int status = 0;
  (void)waitpid(w.pid, &status, 0);
  w.pid = -1;
  w.alive = false;
  if (w.client) w.client->Disconnect();
  w.health.RecordDeath(stats_.ticks);
  ++stats_.kills;
  SaveManifest();
  return Status::OK();
}

Status ProcessSupervisor::RestartShard(int shard) {
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument("no such shard");
  }
  Worker& w = workers_[static_cast<size_t>(shard)];
  if (w.alive || w.pid > 0) return Status::FailedPrecondition("shard is alive");
  Status st = RestartShardInternal(shard);
  if (st.ok()) {
    w.health.RecordRestart(stats_.ticks);
  } else {
    w.health.RecordRestartFailure(stats_.ticks);
  }
  return st;
}

Status ProcessSupervisor::RestartShardInternal(int shard) {
  Worker& w = workers_[static_cast<size_t>(shard)];
  // Every incarnation gets a fresh fencing epoch, even on a failed
  // attempt — epochs only need monotonicity, not density.
  ++w.epoch;
  SPARKTUNE_RETURN_IF_ERROR(SpawnWorker(shard));
  Status st = w.client->Connect();
  if (st.ok()) st = ConfigureWorker(shard);
  if (st.ok()) {
    ++stats_.restarts;
    // Best-effort repository load so re-attached meta-surrogates see the
    // harvested knowledge (an empty repository on first boot is normal).
    (void)w.client->Call(net::MsgKind::kLoadRepository, EmptyBody());
    st = RecoverShardTasks(shard);
  }
  if (!st.ok()) {
    // All-or-nothing: a half-recovered worker running fresh clocks against
    // acked history would fork the trajectory. Kill the fresh child so the
    // shard returns to cleanly-dead and the next attempt starts over.
    if (w.pid > 0) {
      kill(w.pid, SIGKILL);
      int status = 0;
      (void)waitpid(w.pid, &status, 0);
    }
    w.pid = -1;
    w.alive = false;
    if (w.client) w.client->Disconnect();
    return st;
  }
  SaveManifest();
  return Status::OK();
}

Status ProcessSupervisor::RecoverShardTasks(int shard) {
  Worker& w = workers_[static_cast<size_t>(shard)];
  Status first = Status::OK();
  for (TaskEntry& task : tasks_) {
    if (task.shard != shard) continue;
    Json reg = Json::Object();
    reg.Set("id", Json::Str(task.id));
    reg.Set("spec", SimTaskSpecToJson(task.spec));
    auto reg_response = w.client->Call(net::MsgKind::kRegisterTask, reg);
    if (!reg_response.ok()) {
      if (first.ok()) first = reg_response.status();
      continue;
    }
    Json restore = Json::Object();
    restore.Set("id", Json::Str(task.id));
    restore.Set("replay_to",
                Json::Number(static_cast<double>(task.periods)));
    auto response = w.client->Call(net::MsgKind::kRestore, restore);
    if (!response.ok()) {
      if (first.ok()) first = response.status();
      continue;
    }
    if (response->GetBoolOr("restored", false)) {
      ++stats_.restored_tasks;
    } else {
      ++stats_.fresh_replays;
    }
    stats_.replayed_periods +=
        static_cast<long long>(response->GetNumberOr("replayed", 0));
    const long long worker_periods =
        static_cast<long long>(response->GetNumberOr("periods", 0));
    if (worker_periods > task.periods) {
      // The dead incarnation computed these periods but never delivered
      // them; the trajectory stays exact, the results are simply lost.
      stats_.lost_results += worker_periods - task.periods;
    }
    task.periods = worker_periods;
  }
  return first;
}

void ProcessSupervisor::Abandon() {
  // Simulated SIGKILL of this supervisor: forget everything about the
  // fleet without signaling it. No manifest rewrite either — a dead
  // process cannot tidy its own durable state.
  for (Worker& w : workers_) {
    if (w.client) {
      w.client->Disconnect();
      w.client.reset();
    }
    w.pid = -1;
    w.alive = false;
  }
}

void ProcessSupervisor::ReconcileTaskStatus(int shard, const Json& env) {
  const Json* jtasks = env.Get("tasks");
  if (jtasks == nullptr || !jtasks->is_array()) return;
  for (const Json& e : jtasks->elements()) {
    const std::string id = e.GetStringOr("id", "");
    if (id.empty()) continue;
    const long long reported =
        static_cast<long long>(e.GetNumberOr("periods", 0));
    auto it = index_.find(id);
    if (it != index_.end()) {
      TaskEntry& task = tasks_[it->second];
      if (reported > task.periods) task.periods = reported;
      continue;
    }
    // The worker knows a task the manifest does not (registered between
    // the last manifest write and the crash): adopt it outright.
    const Json* spec = e.Get("spec");
    if (spec == nullptr) continue;
    auto decoded = SimTaskSpecFromJson(*spec);
    if (!decoded.ok()) continue;
    TaskEntry entry;
    entry.id = id;
    entry.spec = *decoded;
    entry.shard = shard;
    entry.periods = reported;
    index_.emplace(id, tasks_.size());
    tasks_.push_back(std::move(entry));
    ++stats_.adopted_tasks;
  }
}

Status ProcessSupervisor::Recover() {
  if (options_.manifest_path.empty()) {
    return Status::FailedPrecondition(
        "no manifest path configured; cannot recover");
  }
  SPARKTUNE_ASSIGN_OR_RETURN(
      manifest, LoadSupervisorManifest(options_.manifest_path));
  // Adopt the crashed supervisor's view of the world wholesale; the
  // manifest outranks whatever this instance was constructed with.
  options_.service = manifest.service;
  options_.num_shards = manifest.num_shards;
  space_ready_ = false;
  SPARKTUNE_RETURN_IF_ERROR(InitSpace());
  workers_.clear();
  workers_.resize(static_cast<size_t>(manifest.num_shards));
  for (Worker& w : workers_) {
    w.health = ShardHealthMonitor(options_.health);
  }
  tasks_.clear();
  index_.clear();
  for (const TaskManifestEntry& t : manifest.tasks) {
    TaskEntry entry;
    entry.id = t.id;
    entry.spec = t.spec;
    entry.shard = t.shard;
    entry.periods = t.periods;
    index_.emplace(entry.id, tasks_.size());
    tasks_.push_back(std::move(entry));
  }
  for (int s = 0; s < num_shards(); ++s) {
    Worker& w = workers_[static_cast<size_t>(s)];
    w.epoch = manifest.shards[static_cast<size_t>(s)].epoch;
    const long long pid = manifest.shards[static_cast<size_t>(s)].pid;
    w.client = MakeClient(s);
    bool adopted = false;
    if (pid > 0 && w.client->ConnectOnce().ok()) {
      // Adoption handshake: the worker must be configured AND at exactly
      // the manifest's epoch — anything else is a stale or foreign
      // incarnation and gets fenced.
      auto pong = w.client->Call(net::MsgKind::kPing, EmptyBody());
      if (pong.ok() && pong->GetBoolOr("configured", false) &&
          static_cast<long long>(pong->GetNumberOr("epoch", 0)) == w.epoch) {
        auto status = w.client->Call(net::MsgKind::kTaskStatus, EmptyBody());
        if (status.ok()) {
          w.pid = static_cast<pid_t>(pid);
          w.alive = true;
          w.reconnect = net::ReconnectState{};
          w.health.RecordSuccess();
          // Worker clocks may have advanced past the manifest's acked
          // counts while unsupervised; reconcile forward, never back.
          ReconcileTaskStatus(s, *status);
          ++stats_.adopted_workers;
          adopted = true;
        }
      }
    }
    if (!adopted) {
      if (w.client) w.client->Disconnect();
      if (pid > 0) {
        // Fence: whatever owns that pid must not keep serving acked state.
        kill(static_cast<pid_t>(pid), SIGKILL);
        int status = 0;
        (void)waitpid(static_cast<pid_t>(pid), &status, 0);
        ++stats_.fenced_workers;
      }
      w.pid = -1;
      w.alive = false;
      Status st = RestartShardInternal(s);  // respawns at manifest epoch+1
      if (st.ok()) {
        w.health.RecordRestart(stats_.ticks);
      } else {
        // Leave the shard cleanly dead; auto-restart (or a manual
        // RestartShard) retries on the backoff schedule.
        w.health.RecordRestartFailure(stats_.ticks);
      }
    }
  }
  ++stats_.recoveries;
  SaveManifest();
  return Status::OK();
}

void ProcessSupervisor::SaveManifest() {
  if (options_.manifest_path.empty()) return;
  SupervisorManifest manifest;
  manifest.num_shards = num_shards();
  manifest.service = options_.service;
  for (const Worker& w : workers_) {
    ShardManifestEntry e;
    e.epoch = w.epoch < 1 ? 1 : w.epoch;
    e.pid = w.pid;
    manifest.shards.push_back(e);
  }
  for (const TaskEntry& t : tasks_) {
    TaskManifestEntry e;
    e.id = t.id;
    e.shard = t.shard;
    e.periods = t.periods;
    e.spec = t.spec;
    manifest.tasks.push_back(std::move(e));
  }
  if (!SaveSupervisorManifest(options_.manifest_path, manifest).ok()) {
    ++stats_.manifest_failures;
  }
}

CheckpointReport ProcessSupervisor::CheckpointAll() {
  CheckpointReport report;
  for (int s = 0; s < num_shards(); ++s) {
    Worker& w = workers_[static_cast<size_t>(s)];
    if (!w.alive || !w.client->connected()) continue;
    auto response = w.client->Call(net::MsgKind::kCheckpoint, EmptyBody());
    if (!response.ok()) {
      ++report.failed;
      report.errors.push_back(response.status());
      if (response.status().code() == Status::Code::kUnavailable) {
        MarkWorkerDown(s);
      }
      continue;
    }
    if (const Json* r = response->Get("report")) {
      report.Merge(CheckpointReportFromJson(*r));
    }
  }
  return report;
}

HarvestReport ProcessSupervisor::HarvestDirty(int max_tasks_per_shard) {
  HarvestReport report;
  for (int s = 0; s < num_shards(); ++s) {
    Worker& w = workers_[static_cast<size_t>(s)];
    if (!w.alive || !w.client->connected()) continue;
    Json body = Json::Object();
    body.Set("max_tasks",
             Json::Number(static_cast<double>(max_tasks_per_shard)));
    auto response = w.client->Call(net::MsgKind::kHarvest, body);
    if (!response.ok()) {
      ++report.failed;
      report.errors.push_back(response.status());
      if (response.status().code() == Status::Code::kUnavailable) {
        MarkWorkerDown(s);
      }
      continue;
    }
    if (const Json* r = response->Get("report")) {
      report.Merge(HarvestReportFromJson(*r));
    }
  }
  return report;
}

Status ProcessSupervisor::HarvestTask(const std::string& id) {
  auto it = index_.find(id);
  if (it == index_.end()) return Status::NotFound("unknown task: " + id);
  const TaskEntry& task = tasks_[it->second];
  Worker& w = workers_[static_cast<size_t>(task.shard)];
  if (!w.alive || !w.client->connected()) {
    return Status::Unavailable("task has no live shard: " + id);
  }
  Json body = Json::Object();
  body.Set("id", Json::Str(id));
  return w.client->Call(net::MsgKind::kHarvest, body).status();
}

Result<Configuration> ProcessSupervisor::FetchSuggestion(
    const std::string& id) {
  auto it = index_.find(id);
  if (it == index_.end()) return Status::NotFound("unknown task: " + id);
  const TaskEntry& task = tasks_[it->second];
  Worker& w = workers_[static_cast<size_t>(task.shard)];
  if (!w.alive || !w.client->connected()) {
    return Status::Unavailable("task has no live shard: " + id);
  }
  Json body = Json::Object();
  body.Set("id", Json::Str(id));
  SPARKTUNE_ASSIGN_OR_RETURN(
      response, w.client->Call(net::MsgKind::kFetchSuggestion, body));
  const Json* config = response.Get("config");
  if (config == nullptr || !config->is_array()) {
    return Status::DataLoss("suggestion response has no config array");
  }
  std::vector<double> values;
  values.reserve(config->size());
  for (const Json& v : config->elements()) values.push_back(v.AsNumber());
  return Configuration(std::move(values));
}

Status ProcessSupervisor::Ping(int shard) {
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument("no such shard");
  }
  Worker& w = workers_[static_cast<size_t>(shard)];
  if (!w.alive || !w.client || !w.client->connected()) {
    return Status::Unavailable(StrFormat("shard %d is down", shard));
  }
  return w.client->Call(net::MsgKind::kPing, EmptyBody()).status();
}

Status ProcessSupervisor::Shutdown() {
  Status first = Status::OK();
  for (int s = 0; s < num_shards(); ++s) {
    Worker& w = workers_[static_cast<size_t>(s)];
    if (w.pid <= 0) continue;
    bool acked = false;
    if (w.client && w.client->connected()) {
      acked = w.client->Call(net::MsgKind::kShutdown, EmptyBody()).ok();
    } else if (w.client && w.alive) {
      // Never-connected or redialable worker: one polite attempt.
      if (w.client->ConnectOnce().ok()) {
        acked = w.client->Call(net::MsgKind::kShutdown, EmptyBody()).ok();
      }
    }
    if (!acked) {
      kill(w.pid, SIGKILL);
      if (first.ok()) {
        first = Status::Unavailable(
            StrFormat("shard %d did not ack shutdown; killed", s));
      }
    }
    ReapWorker(s, /*block=*/true);
  }
  return first;
}

int ProcessSupervisor::num_live_shards() const {
  int live = 0;
  for (const Worker& w : workers_) {
    if (w.alive) ++live;
  }
  return live;
}

bool ProcessSupervisor::shard_alive(int shard) const {
  return shard >= 0 && shard < num_shards() &&
         workers_[static_cast<size_t>(shard)].alive;
}

int ProcessSupervisor::shard_of(const std::string& id) const {
  auto it = index_.find(id);
  return it == index_.end() ? -1 : tasks_[it->second].shard;
}

long long ProcessSupervisor::periods(const std::string& id) const {
  auto it = index_.find(id);
  return it == index_.end() ? -1 : tasks_[it->second].periods;
}

std::vector<std::string> ProcessSupervisor::task_ids() const {
  std::vector<std::string> ids;
  ids.reserve(tasks_.size());
  for (const TaskEntry& task : tasks_) ids.push_back(task.id);
  return ids;
}

ShardHealth ProcessSupervisor::shard_health(int shard) const {
  if (shard < 0 || shard >= num_shards()) return ShardHealth::kDown;
  return workers_[static_cast<size_t>(shard)].health.state();
}

long long ProcessSupervisor::shard_epoch(int shard) const {
  if (shard < 0 || shard >= num_shards()) return 0;
  return workers_[static_cast<size_t>(shard)].epoch;
}

long long ProcessSupervisor::total_quarantines() const {
  long long total = 0;
  for (const Worker& w : workers_) total += w.health.quarantines();
  return total;
}

net::ChaosStats ProcessSupervisor::chaos_stats() const {
  // Counters of the CURRENT client incarnations; a respawned shard's
  // fresh channel restarts from zero (indicative, not an exact ledger).
  net::ChaosStats total;
  for (const Worker& w : workers_) {
    if (!w.client) continue;
    const net::ChaosStats& s = w.client->chaos_stats();
    total.exchanges += s.exchanges;
    total.injected += s.injected;
    total.torn_writes += s.torn_writes;
    total.bit_flips += s.bit_flips;
    total.dup_frames += s.dup_frames;
    total.delays += s.delays;
    total.resets += s.resets;
  }
  return total;
}

}  // namespace sparktune
