#include "service/shard_server.h"

#include "common/strings.h"
#include "net/channel.h"
#include "net/socket.h"
#include "service/data_repository.h"
#include "sparksim/spark_conf.h"

namespace sparktune {

Json ShardServer::Handle(net::MsgKind kind, const Json& body) {
  Result<Json> response = Dispatch(kind, body);
  if (!response.ok()) return ErrorEnvelope(response.status());
  return *std::move(response);
}

Result<Json> ShardServer::Dispatch(net::MsgKind kind, const Json& body) {
  switch (kind) {
    case net::MsgKind::kPing:
      return HandlePing();
    case net::MsgKind::kConfigure:
      return HandleConfigure(body);
    case net::MsgKind::kRegisterTask:
      return HandleRegisterTask(body);
    case net::MsgKind::kSubmitObservation:
      return HandleSubmitObservation(body);
    case net::MsgKind::kFetchSuggestion:
      return HandleFetchSuggestion(body);
    case net::MsgKind::kExecute:
      return HandleExecute(body);
    case net::MsgKind::kHarvest:
      return HandleHarvest(body);
    case net::MsgKind::kCheckpoint:
      return HandleCheckpoint();
    case net::MsgKind::kRestore:
      return HandleRestore(body);
    case net::MsgKind::kLoadRepository:
      return HandleLoadRepository();
    case net::MsgKind::kTaskStatus:
      return HandleTaskStatus();
    case net::MsgKind::kShutdown: {
      shutdown_ = true;
      return OkEnvelope();
    }
  }
  return Status::InvalidArgument(StrFormat(
      "unhandled message kind %d", static_cast<int>(kind)));
}

Status ShardServer::RequireConfigured() const {
  if (service_ == nullptr) {
    return Status::FailedPrecondition("shard is not configured yet");
  }
  return Status::OK();
}

Result<Json> ShardServer::HandlePing() {
  Json env = OkEnvelope();
  env.Set("configured", Json::Bool(configured()));
  env.Set("epoch", Json::Number(static_cast<double>(epoch_)));
  env.Set("num_tasks", Json::Number(
      service_ ? static_cast<double>(service_->num_tasks()) : 0.0));
  return env;
}

Result<Json> ShardServer::HandleConfigure(const Json& body) {
  const Json* config_json = body.Get("config");
  if (config_json == nullptr) {
    return Status::InvalidArgument("configure request has no config");
  }
  // Epoch fencing: a configure from an older epoch is a zombie control
  // plane and must not re-arm this worker; a newer (or equal) epoch
  // re-fences in place.
  const long long epoch =
      static_cast<long long>(body.GetNumberOr("epoch", 0));
  if (epoch < epoch_) {
    return Status::FailedPrecondition(StrFormat(
        "stale epoch: worker fenced at %lld, configure carries %lld",
        epoch_, epoch));
  }
  SPARKTUNE_ASSIGN_OR_RETURN(config, ServiceConfigFromJson(*config_json));
  // Canonical bytes (our own codec's dump) make the idempotence check
  // independent of the client's key order or float formatting.
  const std::string bytes = ServiceConfigToJson(config).Dump();
  if (service_ != nullptr) {
    if (bytes == config_bytes_) {
      epoch_ = epoch;
      return OkEnvelope();
    }
    return Status::FailedPrecondition(
        "shard already configured with a different config");
  }
  epoch_ = epoch;
  SPARKTUNE_ASSIGN_OR_RETURN(cluster, ClusterFromName(config.cluster));
  config_ = config;
  config_bytes_ = bytes;
  cluster_ = cluster;
  space_ = BuildSparkSpace(cluster_);
  service_ =
      std::make_unique<TuningService>(&space_, MakeServiceOptions(config_));
  Json env = OkEnvelope();
  env.Set("space_size", Json::Number(static_cast<double>(space_.size())));
  return env;
}

Result<Json> ShardServer::HandleRegisterTask(const Json& body) {
  SPARKTUNE_RETURN_IF_ERROR(RequireConfigured());
  const std::string id = body.GetStringOr("id", "");
  if (id.empty()) {
    return Status::InvalidArgument("register request has no task id");
  }
  const Json* spec_json = body.Get("spec");
  if (spec_json == nullptr) {
    return Status::InvalidArgument("register request has no task spec");
  }
  SPARKTUNE_ASSIGN_OR_RETURN(spec, SimTaskSpecFromJson(*spec_json));
  SPARKTUNE_ASSIGN_OR_RETURN(evaluator,
                             BuildSimEvaluator(&space_, cluster_, spec));
  SPARKTUNE_RETURN_IF_ERROR(service_->RegisterTask(id, evaluator.get()));
  evaluators_[id] = std::move(evaluator);
  specs_[id] = spec;
  return OkEnvelope();
}

Result<Json> ShardServer::HandleSubmitObservation(const Json& body) {
  SPARKTUNE_RETURN_IF_ERROR(RequireConfigured());
  if (config_.repository_dir.empty()) {
    return Status::FailedPrecondition(
        "submit-observation needs a repository");
  }
  const std::string id = body.GetStringOr("id", "");
  if (id.empty()) {
    return Status::InvalidArgument("submit request has no task id");
  }
  if (service_->tuner(id) != nullptr) {
    return Status::FailedPrecondition(
        "task is registered here; its history is tuner-owned: " + id);
  }
  const Json* obs_json = body.Get("obs");
  if (obs_json == nullptr) {
    return Status::InvalidArgument("submit request has no observation");
  }
  SPARKTUNE_ASSIGN_OR_RETURN(
      obs, DataRepository::ObservationFromJson(*obs_json, space_));
  DataRepository repo(config_.repository_dir,
                      CheckpointRetention{config_.keep_generations});
  StoredTask task;
  if (repo.HasTask(id)) {
    SPARKTUNE_ASSIGN_OR_RETURN(loaded, repo.LoadTask(id, space_));
    task = std::move(loaded);
  } else {
    task.id = id;
  }
  task.history.Add(obs);
  SPARKTUNE_RETURN_IF_ERROR(repo.SaveTask(task, space_));
  Json env = OkEnvelope();
  env.Set("observations",
          Json::Number(static_cast<double>(task.history.size())));
  return env;
}

Result<Json> ShardServer::HandleFetchSuggestion(const Json& body) {
  SPARKTUNE_RETURN_IF_ERROR(RequireConfigured());
  const std::string id = body.GetStringOr("id", "");
  const OnlineTuner* tuner = service_->tuner(id);
  if (tuner == nullptr) {
    return Status::NotFound("unknown task: " + id);
  }
  // Bind the incumbent before iterating: BestConfig() returns by value and
  // a range-for over `.values()` of the temporary would dangle.
  const Configuration best = tuner->BestConfig();
  Json config = Json::Array();
  for (double v : best.values()) {
    config.Append(Json::Number(v));
  }
  Json env = OkEnvelope();
  env.Set("config", std::move(config));
  env.Set("objective", Json::Number(tuner->BestObjective()));
  env.Set("phase", Json::Number(static_cast<int>(tuner->phase())));
  env.Set("iterations", Json::Number(tuner->tuning_iterations()));
  return env;
}

Result<Json> ShardServer::HandleExecute(const Json& body) {
  SPARKTUNE_RETURN_IF_ERROR(RequireConfigured());
  // Fencing: the token must match exactly. A request below our epoch is a
  // zombie control plane; a request above it means *we* are the zombie (we
  // missed a re-fence) — either way executing would fork the trajectory.
  if (body.Has("epoch")) {
    const long long epoch =
        static_cast<long long>(body.GetNumberOr("epoch", 0));
    if (epoch != epoch_) {
      return Status::FailedPrecondition(StrFormat(
          "stale epoch: worker fenced at %lld, execute carries %lld",
          epoch_, epoch));
    }
  }
  const Json* ids_json = body.Get("ids");
  if (ids_json == nullptr || !ids_json->is_array()) {
    return Status::InvalidArgument("execute request has no ids array");
  }
  std::vector<std::string> ids;
  ids.reserve(ids_json->size());
  for (const Json& e : ids_json->elements()) {
    if (!e.is_string()) {
      return Status::InvalidArgument("execute ids must be strings");
    }
    ids.push_back(e.AsString());
  }
  std::vector<Result<Observation>> slots = service_->ExecutePeriodicAll(ids);
  Json jslots = Json::Array();
  // Post-execution period clocks ride with the results: if this process is
  // killed after executing but before the control plane reads the reply,
  // the respawned worker's checkpoint may be AHEAD of the control plane's
  // acked count — the control plane adopts worker-reported periods as
  // authoritative, so replay never rewinds a checkpoint.
  Json jperiods = Json::Array();
  for (size_t i = 0; i < slots.size(); ++i) {
    jslots.Append(ResultSlotToJson(slots[i]));
    jperiods.Append(
        Json::Number(static_cast<double>(service_->periods(ids[i]))));
  }
  Json env = OkEnvelope();
  env.Set("slots", std::move(jslots));
  env.Set("periods", std::move(jperiods));
  return env;
}

Result<Json> ShardServer::HandleHarvest(const Json& body) {
  SPARKTUNE_RETURN_IF_ERROR(RequireConfigured());
  if (body.Has("id")) {
    SPARKTUNE_RETURN_IF_ERROR(
        service_->HarvestTask(body.GetStringOr("id", "")));
    return OkEnvelope();
  }
  const int max_tasks = static_cast<int>(body.GetNumberOr("max_tasks", 0));
  HarvestReport report = service_->HarvestDirty(max_tasks);
  Json env = OkEnvelope();
  env.Set("report", HarvestReportToJson(report));
  return env;
}

Result<Json> ShardServer::HandleCheckpoint() {
  SPARKTUNE_RETURN_IF_ERROR(RequireConfigured());
  CheckpointReport report = service_->CheckpointTasks();
  Json env = OkEnvelope();
  env.Set("report", CheckpointReportToJson(report));
  return env;
}

Result<Json> ShardServer::HandleRestore(const Json& body) {
  SPARKTUNE_RETURN_IF_ERROR(RequireConfigured());
  const std::string id = body.GetStringOr("id", "");
  if (service_->tuner(id) == nullptr) {
    return Status::NotFound("unknown task: " + id);
  }
  const long long replay_to =
      static_cast<long long>(body.GetNumberOr("replay_to", 0));
  bool restored = false;
  if (!config_.repository_dir.empty()) {
    Status rs = service_->RestoreTask(id);
    if (rs.ok()) {
      restored = true;
    } else if (rs.code() != Status::Code::kNotFound &&
               rs.code() != Status::Code::kDataLoss) {
      return rs;
    }
    // kNotFound (never checkpointed) and kDataLoss (no intact generation)
    // degrade to replay-from-scratch below.
  }
  // Deterministic catch-up to the control plane's acked period count: each
  // replayed period re-executes with the same fault schedule and advisor
  // draws it had the first time. A checkpoint AHEAD of replay_to (results
  // the dead incarnation computed but never delivered) is left alone.
  long long replayed = 0;
  while (service_->periods(id) < replay_to) {
    (void)service_->ExecutePeriodic(id);
    ++replayed;
  }
  Json env = OkEnvelope();
  env.Set("restored", Json::Bool(restored));
  env.Set("replayed", Json::Number(static_cast<double>(replayed)));
  env.Set("periods",
          Json::Number(static_cast<double>(service_->periods(id))));
  return env;
}

Result<Json> ShardServer::HandleLoadRepository() {
  SPARKTUNE_RETURN_IF_ERROR(RequireConfigured());
  // Best-effort, mirroring ServiceSupervisor::MaybeLoadShard: an empty
  // repository is normal on first boot and must not fail recovery.
  Status st = config_.repository_dir.empty()
                  ? Status::FailedPrecondition("no repository configured")
                  : service_->LoadRepository();
  Json env = OkEnvelope();
  env.Set("loaded", Json::Bool(st.ok()));
  env.Set("status", Json::Str(st.ToString()));
  return env;
}

Result<Json> ShardServer::HandleTaskStatus() {
  SPARKTUNE_RETURN_IF_ERROR(RequireConfigured());
  // Everything a fresh supervisor needs to re-adopt this worker after a
  // control-plane crash: the fencing epoch plus every task's spec and
  // authoritative period clock (specs_ is ordered, so the reply bytes are
  // deterministic).
  Json jtasks = Json::Array();
  for (const auto& [id, spec] : specs_) {
    Json t = Json::Object();
    t.Set("id", Json::Str(id));
    t.Set("periods",
          Json::Number(static_cast<double>(service_->periods(id))));
    t.Set("spec", SimTaskSpecToJson(spec));
    jtasks.Append(std::move(t));
  }
  Json env = OkEnvelope();
  env.Set("epoch", Json::Number(static_cast<double>(epoch_)));
  env.Set("tasks", std::move(jtasks));
  return env;
}

Status ServeShard(const std::string& socket_path, ShardServer* server,
                  int write_deadline_ms, net::ChaosChannel* chaos) {
  SPARKTUNE_ASSIGN_OR_RETURN(listen_fd, net::UnixListen(socket_path));
  while (!server->shutdown_requested()) {
    auto conn = net::UnixAccept(listen_fd.get(), /*deadline_ms=*/-1);
    if (!conn.ok()) {
      if (conn.status().code() == Status::Code::kUnavailable) continue;
      return conn.status();
    }
    // One connection at a time: the control plane is the only client, and
    // serial dispatch keeps worker-side execution single-threaded (the
    // TuningService's own thread pool handles intra-batch parallelism).
    while (!server->shutdown_requested()) {
      auto frame = net::ReadFrame(conn->get(), /*deadline_ms=*/-1);
      if (!frame.ok()) {
        // Peer disconnect (kUnavailable) goes back to accept; a torn or
        // malformed frame (kDataLoss/kInvalidArgument) also drops the
        // connection — the byte stream is unsynchronized and no reply can
        // be framed reliably. The worker itself survives either way.
        break;
      }
      Json body = Json::Object();
      Json response;
      auto doc = Json::Parse(frame->payload);
      if (doc.ok() && doc->is_object()) {
        response = server->Handle(frame->kind, *doc);
      } else {
        response = ErrorEnvelope(
            Status::InvalidArgument("request body is not a JSON object"));
      }
      const std::string reply = response.Dump();
      Status ws = chaos != nullptr
                      ? chaos->WriteFrame(conn->get(), frame->kind, reply,
                                          write_deadline_ms)
                      : net::WriteFrame(conn->get(), frame->kind, reply,
                                        write_deadline_ms);
      if (!ws.ok()) break;
    }
  }
  return Status::OK();
}

}  // namespace sparktune
