// fANOVA parameter importance (paper §4.1, Hutter et al. 2014): fit a
// random forest on (unit-cube config, performance) observations, then
// decompose each tree's prediction variance into per-parameter main effects
// and pairwise interaction effects via exact tree marginals under the
// uniform distribution over the unit cube.
#pragma once

#include "common/result.h"
#include "forest/random_forest.h"
#include "linalg/matrix.h"

namespace sparktune {

// forest.num_threads also drives the per-tree variance decomposition (the
// forest fit and the decomposition parallelize across the same trees).
struct FanovaOptions {
  ForestOptions forest = {.num_trees = 24,
                          .tree = {.max_depth = 10, .min_samples_leaf = 2,
                                   .min_samples_split = 4,
                                   .max_features = -1},
                          .feature_fraction = 0.8,
                          .bootstrap_fraction = 1.0,
                          .seed = 41};
  bool compute_pairwise = true;
};

struct FanovaResult {
  // Fraction of prediction variance explained by each parameter's main
  // effect, averaged over trees. Sums to <= 1.
  std::vector<double> main_effect;
  // Pairwise interaction fractions (symmetric, zero diagonal); empty when
  // compute_pairwise is false.
  Matrix interaction;
  // Mean total variance across trees (0 when the forest is constant).
  double total_variance = 0.0;

  // Combined importance used for ranking: main effect plus half of every
  // interaction the parameter participates in.
  std::vector<double> CombinedImportance() const;
};

class Fanova {
 public:
  // `x` rows must lie in the unit cube. Requires >= 4 observations.
  static Result<FanovaResult> Analyze(const std::vector<std::vector<double>>& x,
                                      const std::vector<double>& y,
                                      const FanovaOptions& options = {});
};

}  // namespace sparktune
