#include "fanova/fanova.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

namespace sparktune {

namespace {

// Axis-aligned leaf cell within the unit cube.
struct LeafCell {
  std::vector<double> lo;
  std::vector<double> hi;
  double value = 0.0;
  double volume = 1.0;
};

void CollectLeaves(const RegressionTree& tree, int node_id,
                   std::vector<double>& lo, std::vector<double>& hi,
                   std::vector<LeafCell>* out) {
  const auto& node = tree.nodes()[static_cast<size_t>(node_id)];
  if (node.is_leaf) {
    LeafCell cell;
    cell.lo = lo;
    cell.hi = hi;
    cell.value = node.value;
    cell.volume = 1.0;
    for (size_t d = 0; d < lo.size(); ++d) {
      cell.volume *= std::max(0.0, hi[d] - lo[d]);
    }
    if (cell.volume > 0.0) out->push_back(std::move(cell));
    return;
  }
  size_t f = static_cast<size_t>(node.feature);
  double old_hi = hi[f], old_lo = lo[f];
  // Left: x[f] <= threshold.
  hi[f] = std::min(old_hi, node.threshold);
  if (hi[f] > lo[f]) CollectLeaves(tree, node.left, lo, hi, out);
  hi[f] = old_hi;
  // Right: x[f] > threshold.
  lo[f] = std::max(old_lo, node.threshold);
  if (hi[f] > lo[f]) CollectLeaves(tree, node.right, lo, hi, out);
  lo[f] = old_lo;
}

// Sorted unique interval boundaries for dimension d across leaves.
std::vector<double> BoundariesFor(const std::vector<LeafCell>& leaves,
                                  size_t d) {
  std::vector<double> b = {0.0, 1.0};
  for (const auto& leaf : leaves) {
    b.push_back(leaf.lo[d]);
    b.push_back(leaf.hi[d]);
  }
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end(),
                      [](double a, double c) { return std::fabs(a - c) < 1e-12; }),
          b.end());
  return b;
}

struct TreeDecomposition {
  double mean = 0.0;
  double variance = 0.0;
  std::vector<double> main_var;          // V_d
  std::vector<std::vector<double>> pair_var;  // V_{de} (interaction only)
};

TreeDecomposition DecomposeTree(const RegressionTree& tree, size_t dims,
                                bool pairwise) {
  TreeDecomposition out;
  out.main_var.assign(dims, 0.0);
  if (pairwise) {
    out.pair_var.assign(dims, std::vector<double>(dims, 0.0));
  }

  std::vector<double> lo(dims, 0.0), hi(dims, 1.0);
  std::vector<LeafCell> leaves;
  CollectLeaves(tree, tree.root(), lo, hi, &leaves);
  if (leaves.empty()) return out;

  double mu = 0.0, second = 0.0;
  for (const auto& leaf : leaves) {
    mu += leaf.volume * leaf.value;
    second += leaf.volume * leaf.value * leaf.value;
  }
  out.mean = mu;
  out.variance = std::max(0.0, second - mu * mu);
  if (out.variance <= 0.0) return out;

  // Main effects.
  std::vector<std::vector<double>> bounds(dims);
  for (size_t d = 0; d < dims; ++d) {
    bounds[d] = BoundariesFor(leaves, d);
    const auto& b = bounds[d];
    double var_acc = 0.0;
    for (size_t i = 0; i + 1 < b.size(); ++i) {
      double mid = 0.5 * (b[i] + b[i + 1]);
      double len = b[i + 1] - b[i];
      // Marginal prediction at x_d = mid: integrate out other dims.
      double a = 0.0;
      for (const auto& leaf : leaves) {
        if (mid >= leaf.lo[d] && mid < leaf.hi[d]) {
          double vol_rest = leaf.volume / (leaf.hi[d] - leaf.lo[d]);
          a += vol_rest * leaf.value;
        }
      }
      var_acc += len * (a - mu) * (a - mu);
    }
    out.main_var[d] = var_acc;
  }

  if (!pairwise) return out;

  for (size_t d = 0; d + 1 < dims; ++d) {
    for (size_t e = d + 1; e < dims; ++e) {
      const auto& bd = bounds[d];
      const auto& be = bounds[e];
      double var_acc = 0.0;
      for (size_t i = 0; i + 1 < bd.size(); ++i) {
        double mid_d = 0.5 * (bd[i] + bd[i + 1]);
        double len_d = bd[i + 1] - bd[i];
        for (size_t j = 0; j + 1 < be.size(); ++j) {
          double mid_e = 0.5 * (be[j] + be[j + 1]);
          double len_e = be[j + 1] - be[j];
          double a = 0.0;
          for (const auto& leaf : leaves) {
            if (mid_d >= leaf.lo[d] && mid_d < leaf.hi[d] &&
                mid_e >= leaf.lo[e] && mid_e < leaf.hi[e]) {
              double vol_rest = leaf.volume /
                                ((leaf.hi[d] - leaf.lo[d]) *
                                 (leaf.hi[e] - leaf.lo[e]));
              a += vol_rest * leaf.value;
            }
          }
          var_acc += len_d * len_e * (a - mu) * (a - mu);
        }
      }
      // Subtract the contained main effects (functional ANOVA).
      double inter =
          std::max(0.0, var_acc - out.main_var[d] - out.main_var[e]);
      out.pair_var[d][e] = inter;
      out.pair_var[e][d] = inter;
    }
  }
  return out;
}

}  // namespace

std::vector<double> FanovaResult::CombinedImportance() const {
  std::vector<double> combined = main_effect;
  if (interaction.rows() == combined.size()) {
    for (size_t d = 0; d < combined.size(); ++d) {
      for (size_t e = 0; e < combined.size(); ++e) {
        combined[d] += 0.5 * interaction(d, e);
      }
    }
  }
  return combined;
}

Result<FanovaResult> Fanova::Analyze(const std::vector<std::vector<double>>& x,
                                     const std::vector<double>& y,
                                     const FanovaOptions& options) {
  if (x.size() < 4 || x.size() != y.size()) {
    return Status::InvalidArgument("fANOVA needs >= 4 matching observations");
  }
  size_t dims = x[0].size();
  for (const auto& row : x) {
    for (double v : row) {
      if (v < -1e-9 || v > 1.0 + 1e-9) {
        return Status::InvalidArgument("fANOVA inputs must be in [0,1]");
      }
    }
  }

  RandomForest forest(options.forest);
  SPARKTUNE_RETURN_IF_ERROR(forest.Fit(x, y));

  FanovaResult result;
  result.main_effect.assign(dims, 0.0);
  if (options.compute_pairwise) {
    result.interaction = Matrix(dims, dims, 0.0);
  }

  // Decompose every tree concurrently (each writes only its own slot);
  // accumulate serially in tree order so the floating-point sums match the
  // serial path bit-for-bit.
  const auto& trees = forest.trees();
  std::vector<TreeDecomposition> decs(trees.size());
  ParallelFor(options.forest.num_threads, trees.size(), [&](size_t t) {
    decs[t] = DecomposeTree(trees[t], dims, options.compute_pairwise);
  });

  int counted = 0;
  for (const TreeDecomposition& dec : decs) {
    if (dec.variance <= 0.0) continue;
    ++counted;
    result.total_variance += dec.variance;
    for (size_t d = 0; d < dims; ++d) {
      result.main_effect[d] += dec.main_var[d] / dec.variance;
    }
    if (options.compute_pairwise) {
      for (size_t d = 0; d < dims; ++d) {
        for (size_t e = 0; e < dims; ++e) {
          result.interaction(d, e) += dec.pair_var[d][e] / dec.variance;
        }
      }
    }
  }
  if (counted > 0) {
    double inv = 1.0 / counted;
    result.total_variance *= inv;
    for (auto& v : result.main_effect) v *= inv;
    if (options.compute_pairwise) {
      for (size_t d = 0; d < dims; ++d) {
        for (size_t e = 0; e < dims; ++e) result.interaction(d, e) *= inv;
      }
    }
  }
  return result;
}

}  // namespace sparktune
