// FaultInjectingEvaluator: deterministic chaos at the evaluation boundary
// (DESIGN.md §7).
//
// Wraps any JobEvaluator and injects the infrastructure faults a production
// tuning service must survive: evaluator crashes, transient cluster errors,
// hung executions (killed by the watchdog and reported as timeout outcomes),
// and corrupted or truncated event logs. The fault for run index i is drawn
// from an RNG stream derived only from (seed, i), so the fault schedule is
// bit-identical at any thread count and replayable after a restart.
//
// Crash/transient faults return before touching the wrapped evaluator: the
// execution "never happened", the inner clock does not advance, and a retry
// of the same suggestion observes exactly the outcome a fault-free run would
// have. That property is what lets the service keep the advisor's view of
// the world identical to a fault-free run's.
#pragma once

#include <cstdint>

#include "tuner/evaluator.h"

namespace sparktune {

struct FaultInjectionOptions {
  uint64_t seed = 99;
  // Evaluator process dies before launching the job. No execution, kInfra.
  double crash_prob = 0.0;
  // Transient cluster/submission error (queue full, RM hiccup). No
  // execution, kInfra.
  double transient_error_prob = 0.0;
  // Job launches but wedges; the watchdog kills it after the runtime bound.
  // The execution happened, outcome is kTimeout (configuration-blamed,
  // exactly like a genuine straggler-induced hang).
  double hang_prob = 0.0;
  // Job completes but the event log comes back with garbage metrics.
  double corrupt_log_prob = 0.0;
  // Job completes but the event log is cut off (no stages survive).
  double truncate_log_prob = 0.0;
  // Reported runtime multiplier for a killed hang.
  double hang_runtime_factor = 10.0;
};

class FaultInjectingEvaluator final : public JobEvaluator {
 public:
  struct Counters {
    long long crashes = 0;
    long long transient_errors = 0;
    long long hangs = 0;
    long long corrupted_logs = 0;
    long long truncated_logs = 0;
    long long clean_runs = 0;
  };

  // `inner` must outlive this evaluator.
  FaultInjectingEvaluator(JobEvaluator* inner, FaultInjectionOptions options);

  Outcome Run(const Configuration& config) override;
  double ResourceRate(const Configuration& config) const override;
  double NextDataSizeHintGb() const override;
  double NextHours() const override;
  // Replays the fault schedule for the skipped indices so the inner clock
  // advances exactly as it did in the original run (crash/transient slots
  // consumed no inner execution).
  void SkipExecutions(int n) override;

  const Counters& counters() const { return counters_; }
  // Outer Run() calls so far == the fault-schedule cursor.
  long long runs() const { return runs_; }

 private:
  enum class Fault {
    kNone,
    kCrash,
    kTransient,
    kHang,
    kCorruptLog,
    kTruncateLog,
  };

  Fault DrawFault(long long index) const;

  JobEvaluator* inner_;
  FaultInjectionOptions options_;
  long long runs_ = 0;
  Counters counters_;
};

}  // namespace sparktune
