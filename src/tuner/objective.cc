#include "tuner/objective.h"

#include <cmath>

namespace sparktune {

double TuningObjective::Value(double runtime_sec,
                              double resource_rate) const {
  runtime_sec = std::max(runtime_sec, 1e-9);
  resource_rate = std::max(resource_rate, 1e-9);
  return std::pow(runtime_sec, beta) * std::pow(resource_rate, 1.0 - beta);
}

double TuningObjective::DfDt(double runtime_sec, double resource_rate) const {
  runtime_sec = std::max(runtime_sec, 1e-9);
  resource_rate = std::max(resource_rate, 1e-9);
  // d/dT [T^b R^(1-b)] = b (T/R)^(b-1)
  return beta * std::pow(runtime_sec / resource_rate, beta - 1.0);
}

double TuningObjective::DfDr(double runtime_sec, double resource_rate) const {
  runtime_sec = std::max(runtime_sec, 1e-9);
  resource_rate = std::max(resource_rate, 1e-9);
  // d/dR [T^b R^(1-b)] = (1-b) (T/R)^b
  return (1.0 - beta) * std::pow(runtime_sec / resource_rate, beta);
}

Status TuningObjective::Validate() const {
  if (beta < 0.0 || beta > 1.0) {
    return Status::InvalidArgument("beta must be in [0, 1]");
  }
  if (runtime_max <= 0.0 || resource_max <= 0.0) {
    return Status::InvalidArgument("constraint thresholds must be positive");
  }
  return Status::OK();
}

}  // namespace sparktune
