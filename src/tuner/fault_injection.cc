#include "tuner/fault_injection.h"

#include <cassert>
#include <limits>

#include "common/rng.h"

namespace sparktune {

FaultInjectingEvaluator::FaultInjectingEvaluator(JobEvaluator* inner,
                                                 FaultInjectionOptions options)
    : inner_(inner), options_(options) {
  assert(inner_ != nullptr);
}

FaultInjectingEvaluator::Fault FaultInjectingEvaluator::DrawFault(
    long long index) const {
  // Per-index derived stream (same idiom as SimulatorEvaluator's run seed):
  // the draw depends only on (seed, index), never on who called first.
  Rng rng(options_.seed * 0x9E3779B97F4A7C15ULL +
          static_cast<uint64_t>(index));
  double u = rng.Uniform();
  double edge = options_.crash_prob;
  if (u < edge) return Fault::kCrash;
  edge += options_.transient_error_prob;
  if (u < edge) return Fault::kTransient;
  edge += options_.hang_prob;
  if (u < edge) return Fault::kHang;
  edge += options_.corrupt_log_prob;
  if (u < edge) return Fault::kCorruptLog;
  edge += options_.truncate_log_prob;
  if (u < edge) return Fault::kTruncateLog;
  return Fault::kNone;
}

JobEvaluator::Outcome FaultInjectingEvaluator::Run(
    const Configuration& config) {
  const long long index = runs_++;
  const Fault fault = DrawFault(index);
  switch (fault) {
    case Fault::kCrash:
    case Fault::kTransient: {
      // The execution never happened: the inner clock must not advance, so
      // a later retry of this suggestion sees the exact outcome the
      // fault-free schedule would have produced.
      if (fault == Fault::kCrash) {
        ++counters_.crashes;
      } else {
        ++counters_.transient_errors;
      }
      Outcome out;
      out.failure = FailureKind::kInfra;
      out.runtime_sec = 0.0;
      out.resource_rate = 0.0;
      out.data_size_gb = -1.0;
      out.hours = inner_->NextHours();
      return out;
    }
    case Fault::kHang: {
      ++counters_.hangs;
      Outcome out = inner_->Run(config);
      out.failure = FailureKind::kTimeout;
      out.runtime_sec *= options_.hang_runtime_factor;
      // The watchdog killed the container; nothing useful was flushed.
      out.event_log.stages.clear();
      return out;
    }
    case Fault::kCorruptLog: {
      ++counters_.corrupted_logs;
      Outcome out = inner_->Run(config);
      // The run itself succeeded; only the log is garbage. Deterministic
      // corruption: poison the stage metrics that EventLogLooksSane vets.
      for (auto& stage : out.event_log.stages) {
        stage.duration_sec = std::numeric_limits<double>::quiet_NaN();
        stage.input_mb = -stage.input_mb - 1.0;
      }
      return out;
    }
    case Fault::kTruncateLog: {
      ++counters_.truncated_logs;
      Outcome out = inner_->Run(config);
      out.event_log.stages.clear();
      return out;
    }
    case Fault::kNone:
      break;
  }
  ++counters_.clean_runs;
  return inner_->Run(config);
}

double FaultInjectingEvaluator::ResourceRate(const Configuration& config)
    const {
  return inner_->ResourceRate(config);
}

double FaultInjectingEvaluator::NextDataSizeHintGb() const {
  return inner_->NextDataSizeHintGb();
}

double FaultInjectingEvaluator::NextHours() const {
  return inner_->NextHours();
}

void FaultInjectingEvaluator::SkipExecutions(int n) {
  for (int i = 0; i < n; ++i) {
    const long long index = runs_++;
    Fault f = DrawFault(index);
    // Crash/transient slots never reached the inner evaluator; every other
    // slot consumed exactly one inner execution.
    if (f != Fault::kCrash && f != Fault::kTransient) {
      inner_->SkipExecutions(1);
    }
  }
}

}  // namespace sparktune
