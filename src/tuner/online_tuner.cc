#include "tuner/online_tuner.h"

#include <cassert>
#include <cmath>

namespace sparktune {

OnlineTuner::OnlineTuner(const ConfigSpace* space, JobEvaluator* evaluator,
                         TunerOptions options,
                         std::optional<Configuration> baseline)
    : space_(space),
      evaluator_(evaluator),
      options_(std::move(options)),
      objective_(options_.advisor.objective) {
  assert(space_ != nullptr && evaluator_ != nullptr);
  baseline_config_ =
      baseline.has_value() ? space_->Legalize(*baseline) : space_->Default();
  phase_ = options_.measure_baseline ? TunerPhase::kBaseline
                                     : TunerPhase::kTuning;
  if (!options_.measure_baseline) EnsureAdvisor();
}

void OnlineTuner::SetWarmStartConfigs(std::vector<Configuration> configs) {
  if (advisor_) {
    advisor_->SetWarmStartConfigs(std::move(configs));
  } else {
    pending_warm_start_ = std::move(configs);
  }
}

void OnlineTuner::SetObjectiveSurrogateFactory(SurrogateFactory factory) {
  if (advisor_) {
    advisor_->SetObjectiveSurrogateFactory(std::move(factory));
  } else {
    pending_factory_ = std::move(factory);
  }
}

void OnlineTuner::SeedImportance(std::vector<double> scores, double weight) {
  if (advisor_) {
    advisor_->SeedImportance(scores, weight);
  } else {
    pending_importance_.emplace_back(std::move(scores), weight);
  }
}

void OnlineTuner::EnsureAdvisor() {
  if (advisor_) return;
  AdvisorOptions aopts = options_.advisor;
  aopts.objective = objective_;
  if (!aopts.resource_fn) {
    aopts.resource_fn = [this](const Configuration& c) {
      return evaluator_->ResourceRate(c);
    };
  }
  advisor_ = std::make_unique<Advisor>(space_, std::move(aopts));
  if (!pending_warm_start_.empty()) {
    advisor_->SetWarmStartConfigs(std::move(pending_warm_start_));
    pending_warm_start_.clear();
  }
  if (pending_factory_) {
    advisor_->SetObjectiveSurrogateFactory(std::move(pending_factory_));
    pending_factory_ = nullptr;
  }
  for (auto& [scores, weight] : pending_importance_) {
    advisor_->SeedImportance(scores, weight);
  }
  pending_importance_.clear();
}

Observation OnlineTuner::MakeObservation(const Configuration& config,
                                         const JobEvaluator::Outcome& outcome,
                                         int iteration) const {
  Observation obs;
  obs.config = config;
  obs.runtime_sec = outcome.runtime_sec;
  obs.resource_rate = outcome.resource_rate;
  obs.memory_gb_hours = outcome.memory_gb_hours;
  obs.cpu_core_hours = outcome.cpu_core_hours;
  obs.data_size_gb = outcome.data_size_gb;
  obs.hours = outcome.hours;
  obs.failure = outcome.failure;
  obs.objective = objective_.Value(outcome.runtime_sec, outcome.resource_rate);
  obs.feasible =
      !outcome.failed() &&
      objective_.Feasible(outcome.runtime_sec, outcome.resource_rate);
  obs.iteration = iteration;
  return obs;
}

Observation OnlineTuner::Step() {
  ++executions_;
  switch (phase_) {
    case TunerPhase::kBaseline: {
      JobEvaluator::Outcome outcome = evaluator_->Run(baseline_config_);
      if (outcome.failure == FailureKind::kInfra) {
        // The baseline never actually ran: stay in kBaseline and retry next
        // period rather than deriving constraints from a phantom run.
        return MakeObservation(baseline_config_, outcome, 0);
      }
      last_event_log_ = outcome.event_log;
      // Derive constraints from the manual metrics.
      objective_.runtime_max =
          outcome.runtime_sec * options_.constraint_runtime_factor;
      objective_.resource_max =
          outcome.resource_rate * options_.constraint_resource_factor;
      Observation obs = MakeObservation(baseline_config_, outcome, 0);
      baseline_obs_ = obs;
      EnsureAdvisor();
      advisor_->Observe(obs);
      phase_ = TunerPhase::kTuning;
      return obs;
    }
    case TunerPhase::kTuning: {
      EnsureAdvisor();
      Configuration config;
      if (pending_config_.has_value()) {
        config = *pending_config_;
      } else {
        config = advisor_->Suggest(evaluator_->NextDataSizeHintGb(),
                                   evaluator_->NextHours());
        pending_config_ = config;
        pending_attempts_ = 0;
      }
      JobEvaluator::Outcome outcome = evaluator_->Run(config);
      if (outcome.failure == FailureKind::kInfra) {
        // The platform failed, not the configuration: keep the suggestion
        // pending for a retry and keep the outcome away from the advisor so
        // infra noise never becomes an unsafe-config label nor advances the
        // suggestion RNG streams.
        if (++pending_attempts_ >= options_.retry.max_attempts) {
          pending_config_.reset();
          pending_attempts_ = 0;
        }
        return MakeObservation(config, outcome, tuning_iterations_);
      }
      pending_config_.reset();
      pending_attempts_ = 0;
      last_event_log_ = outcome.event_log;
      ++tuning_iterations_;
      Observation obs = MakeObservation(config, outcome, tuning_iterations_);
      advisor_->Observe(obs);

      bool budget_done = tuning_iterations_ >= options_.budget;
      bool ei_stop = false;
      if (options_.ei_stop_threshold > 0.0 &&
          tuning_iterations_ >= options_.min_iterations_before_stop &&
          !advisor_->last_was_initial() && !advisor_->last_was_agd()) {
        double incumbent = advisor_->BestObjective();
        // In log space the raw EI is already a relative improvement (nats);
        // otherwise normalize by the incumbent.
        double rel_ei = advisor_->options().log_targets
                            ? advisor_->last_raw_ei()
                            : advisor_->last_raw_ei() / incumbent;
        if (std::isfinite(incumbent) && incumbent > 0.0 &&
            rel_ei < options_.ei_stop_threshold) {
          ei_stop = true;
        }
      }
      if (budget_done || ei_stop) {
        stopped_early_ = ei_stop && !budget_done;
        phase_ = TunerPhase::kApplying;
        degradation_streak_ = 0;
      }
      return obs;
    }
    case TunerPhase::kApplying: {
      Configuration best = BestConfig();
      JobEvaluator::Outcome outcome = evaluator_->Run(best);
      if (outcome.failure == FailureKind::kInfra) {
        // Not evidence about the configuration: skip the applied-history
        // and degradation-restart bookkeeping entirely.
        return MakeObservation(best, outcome, tuning_iterations_);
      }
      last_event_log_ = outcome.event_log;
      Observation obs = MakeObservation(best, outcome, tuning_iterations_);
      applied_history_.Add(obs);

      // Continuous-degradation restart check (§3.3).
      if (options_.degradation_window > 0 && advisor_) {
        double expected = advisor_->BestObjective();
        if (std::isfinite(expected) &&
            obs.objective > expected * options_.degradation_factor) {
          if (++degradation_streak_ >= options_.degradation_window) {
            ++restarts_;
            tuning_iterations_ = 0;
            stopped_early_ = false;
            degradation_streak_ = 0;
            advisor_->ResetForRestart();
            phase_ = TunerPhase::kTuning;
          }
        } else {
          degradation_streak_ = 0;
        }
      }
      return obs;
    }
  }
  // Unreachable.
  return Observation{};
}

Observation OnlineTuner::StepDegraded() {
  ++executions_;
  Configuration best = BestConfig();
  JobEvaluator::Outcome outcome = evaluator_->Run(best);
  last_event_log_ = outcome.event_log;
  Observation obs = MakeObservation(best, outcome, tuning_iterations_);
  obs.degraded = true;
  // Deliberately not observed and not in applied_history_: a parked task's
  // incumbent replays must not shift the trajectory it resumes later.
  return obs;
}

TunerState OnlineTuner::SaveState() const {
  TunerState s;
  s.phase = static_cast<int>(phase_);
  s.runtime_max = objective_.runtime_max;
  s.resource_max = objective_.resource_max;
  s.baseline_obs = baseline_obs_;
  s.applied_history = applied_history_.observations();
  s.tuning_iterations = tuning_iterations_;
  s.executions = executions_;
  s.stopped_early = stopped_early_;
  s.restarts = restarts_;
  s.degradation_streak = degradation_streak_;
  s.pending_config = pending_config_;
  s.pending_attempts = pending_attempts_;
  s.has_advisor = advisor_ != nullptr;
  if (advisor_) s.advisor = advisor_->SaveState();
  return s;
}

void OnlineTuner::RestoreState(const TunerState& s) {
  phase_ = static_cast<TunerPhase>(s.phase);
  objective_.runtime_max = s.runtime_max;
  objective_.resource_max = s.resource_max;
  baseline_obs_ = s.baseline_obs;
  applied_history_.Clear();
  for (const auto& obs : s.applied_history) applied_history_.Add(obs);
  tuning_iterations_ = s.tuning_iterations;
  executions_ = s.executions;
  stopped_early_ = s.stopped_early;
  restarts_ = s.restarts;
  degradation_streak_ = s.degradation_streak;
  pending_config_ = s.pending_config;
  pending_attempts_ = s.pending_attempts;
  if (s.has_advisor) {
    // EnsureAdvisor copies objective_ (with the constraints restored above)
    // into the advisor options, so the rebuilt advisor sees the same
    // thresholds the checkpointed one derived from its baseline.
    EnsureAdvisor();
    advisor_->RestoreState(s.advisor);
  }
}

TuningReport OnlineTuner::RunToCompletion(int executions) {
  for (int i = 0; i < executions; ++i) Step();
  TuningReport report;
  report.best_config = BestConfig();
  report.best_objective = BestObjective();
  report.baseline = baseline_obs_;
  report.tuning_iterations = tuning_iterations_;
  report.stopped_early = stopped_early_;
  report.restarts = restarts_;
  return report;
}

void OnlineTuner::CompactLastEventLog() {
  if (last_event_log_.stages.empty()) return;  // already compact
  last_event_summary_ = SummarizeEventLog(last_event_log_);
  last_event_log_ = EventLog{};  // releases the stage arena
}

const RunHistory& OnlineTuner::history() const {
  static const RunHistory kEmpty;
  return advisor_ ? advisor_->history() : kEmpty;
}

Configuration OnlineTuner::BestConfig() const {
  if (advisor_) {
    const RunHistory& h = advisor_->history();
    int best = h.BestFeasibleIndex();
    if (best >= 0) return h.config(static_cast<size_t>(best));
  }
  return baseline_config_;
}

double OnlineTuner::BestObjective() const {
  return advisor_ ? advisor_->BestObjective()
                  : std::numeric_limits<double>::infinity();
}

}  // namespace sparktune
