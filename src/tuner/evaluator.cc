#include "tuner/evaluator.h"

#include <cassert>

namespace sparktune {

FailureKind MapSimFailure(SimFailureKind kind) {
  switch (kind) {
    case SimFailureKind::kNone:
      return FailureKind::kNone;
    // Memory-class failures, incl. kNoExecutors: the configuration asked
    // for containers the cluster cannot grant, which is as
    // configuration-induced as an OOM kill.
    case SimFailureKind::kNoExecutors:
    case SimFailureKind::kExecutorOom:
    case SimFailureKind::kContainerKill:
    case SimFailureKind::kDriverOom:
      return FailureKind::kOom;
    case SimFailureKind::kFetchTimeout:
      return FailureKind::kTimeout;
  }
  return FailureKind::kNone;
}

SimulatorEvaluator::SimulatorEvaluator(const ConfigSpace* space,
                                       WorkloadSpec workload,
                                       ClusterSpec cluster, DriftModel drift,
                                       SimulatorEvaluatorOptions options)
    : space_(space),
      workload_(std::move(workload)),
      drift_(drift),
      options_(options),
      simulator_(std::move(cluster), options.sim) {
  assert(space_ != nullptr);
  assert(workload_.Valid());
}

double SimulatorEvaluator::DataSizeForExecution(int index) const {
  double hours = index * options_.period_hours;
  return workload_.input_gb *
         drift_.Multiplier(hours, options_.seed, index);
}

JobEvaluator::Outcome SimulatorEvaluator::Run(const Configuration& config) {
  double data_gb = DataSizeForExecution(executions_);
  SparkConf conf = DecodeSparkConf(*space_, config);
  uint64_t run_seed =
      options_.seed * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(executions_);
  ExecutionResult result =
      simulator_.Execute(workload_, conf, data_gb, run_seed);
  ++executions_;

  Outcome out;
  out.runtime_sec = result.runtime_sec;
  out.resource_rate = result.resource_rate;
  out.memory_gb_hours = result.memory_gb_hours;
  out.cpu_core_hours = result.cpu_core_hours;
  out.failure = MapSimFailure(result.failure);
  out.data_size_gb = options_.datasize_observable ? data_gb : -1.0;
  out.hours = (executions_ - 1) * options_.period_hours;
  out.event_log = std::move(result.event_log);
  return out;
}

double SimulatorEvaluator::ResourceRate(const Configuration& config) const {
  SparkConf conf = DecodeSparkConf(*space_, config);
  return ResourceFunction(conf, options_.sim.mem_weight);
}

double SimulatorEvaluator::NextHours() const {
  return executions_ * options_.period_hours;
}

double SimulatorEvaluator::NextDataSizeHintGb() const {
  if (!options_.datasize_observable) return -1.0;
  // The platform can estimate the upcoming input from upstream tables; the
  // drift mean (without run noise) is that estimate.
  DriftModel noiseless = drift_;
  noiseless.noise_sigma = 0.0;
  return workload_.input_gb *
         noiseless.Multiplier(executions_ * options_.period_hours,
                              options_.seed, executions_);
}

}  // namespace sparktune
