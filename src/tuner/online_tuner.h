// OnlineTune controller (paper §3.1, §3.3): orchestrates the per-job online
// tuning loop against the data platform. States:
//
//   baseline  -> measure the manual configuration once, derive the
//                constraints (T_max, R_max = factor x baseline metrics);
//   tuning    -> Advisor::Suggest per periodic execution, until the budget
//                exhausts or the EI stopping criterion fires;
//   applying  -> keep running the best-found configuration; continuous
//                degradation vs. the expected objective triggers a restart
//                of tuning (workload shifted).
#pragma once

#include <memory>
#include <optional>

#include "bo/advisor.h"
#include "common/backoff.h"
#include "tuner/evaluator.h"

namespace sparktune {

enum class TunerPhase { kBaseline, kTuning, kApplying };

struct TunerOptions {
  // Tuning budget in iterations (online executions used for search).
  int budget = 20;
  AdvisorOptions advisor;

  // Constraints = factor x baseline metrics (paper §6.2: "twice the metrics
  // of the manual configurations"). Ignored if measure_baseline is false —
  // then advisor.objective must carry explicit thresholds.
  bool measure_baseline = true;
  double constraint_runtime_factor = 2.0;
  double constraint_resource_factor = 2.0;

  // Early stop when relative EI drops below this threshold (<=0 disables).
  double ei_stop_threshold = 0.10;
  int min_iterations_before_stop = 8;

  // Restart when the applied config's objective exceeds expectation by
  // `degradation_factor` for `degradation_window` consecutive executions
  // (0 disables).
  double degradation_factor = 1.3;
  int degradation_window = 3;

  // Infra-failure handling (DESIGN.md §7). The tuner uses max_attempts to
  // bound how often the same pending suggestion is retried; the service
  // watchdog uses the backoff/circuit-breaker fields.
  RetryPolicy retry;
};

// Serialized mutable state of an OnlineTuner (checkpoint payload).
// `executions` counts evaluator Run() calls, which is exactly how far a
// rebuilt evaluator must be fast-forwarded (JobEvaluator::SkipExecutions)
// on restore. Resolved constraints travel with the snapshot because they
// were derived from the baseline run, not from options.
struct TunerState {
  int phase = 0;  // TunerPhase as int
  double runtime_max = std::numeric_limits<double>::infinity();
  double resource_max = std::numeric_limits<double>::infinity();
  std::optional<Observation> baseline_obs;
  std::vector<Observation> applied_history;
  int tuning_iterations = 0;
  int executions = 0;
  bool stopped_early = false;
  int restarts = 0;
  int degradation_streak = 0;
  std::optional<Configuration> pending_config;
  int pending_attempts = 0;
  bool has_advisor = false;
  AdvisorState advisor;  // valid iff has_advisor
};

struct TuningReport {
  Configuration best_config;
  double best_objective = 0.0;
  std::optional<Observation> baseline;
  int tuning_iterations = 0;
  bool stopped_early = false;
  int restarts = 0;
};

class OnlineTuner {
 public:
  // `baseline` is the manual/pre-tuning configuration (defaults to the
  // space default when empty).
  OnlineTuner(const ConfigSpace* space, JobEvaluator* evaluator,
              TunerOptions options,
              std::optional<Configuration> baseline = std::nullopt);

  // One periodic execution (suggest/apply + run + record). Returns the
  // observation of that execution. An infra failure (Outcome kInfra) is
  // returned but never fed to the advisor: the suggestion stays pending
  // and the next Step retries it (up to options.retry.max_attempts), so
  // infrastructure faults cannot poison the safety labels or advance the
  // advisor's RNG streams.
  Observation Step();

  // Degraded-mode execution for a parked (circuit-broken) task: run the
  // incumbent/baseline configuration without consulting the advisor. The
  // observation is marked `degraded` and recorded nowhere, leaving the
  // tuning trajectory untouched for when the breaker closes.
  Observation StepDegraded();

  // Convenience: run `executions` steps and summarize.
  TuningReport RunToCompletion(int executions);

  TunerPhase phase() const { return phase_; }
  const RunHistory& history() const;
  Configuration BestConfig() const;
  double BestObjective() const;
  const std::optional<Observation>& baseline_observation() const {
    return baseline_obs_;
  }
  // Advisor access for meta-learning wiring; null until the baseline has
  // been measured (or immediately if measure_baseline is false).
  Advisor* advisor() { return advisor_.get(); }
  const Advisor* advisor() const { return advisor_.get(); }

  int tuning_iterations() const { return tuning_iterations_; }
  bool stopped_early() const { return stopped_early_; }
  int restarts() const { return restarts_; }
  const TuningObjective& objective() const { return objective_; }
  // Event log of the most recent execution (meta-feature source). Empty
  // after CompactLastEventLog() until the next execution refills it.
  const EventLog& last_event_log() const { return last_event_log_; }
  // Fleet diet: release the retained event log (stage records plus metric
  // distributions), keeping only a compact digest. Callers that need the
  // full log must consume it before the end of the period.
  void CompactLastEventLog();
  // Digest of the log most recently compacted ({} until first compaction).
  const EventLogSummary& last_event_summary() const {
    return last_event_summary_;
  }

  // Pending meta hooks applied when the advisor is created.
  void SetWarmStartConfigs(std::vector<Configuration> configs);
  void SetObjectiveSurrogateFactory(SurrogateFactory factory);
  void SeedImportance(std::vector<double> scores, double weight = 1.0);

  // Total evaluator Run() calls issued so far (the fast-forward distance a
  // rebuilt evaluator needs on restore).
  int executions() const { return executions_; }

  // Snapshot / restore the full mutable state (checkpoint support).
  // Restore expects a tuner built over the same space, options, and
  // baseline; the evaluator is NOT rewound here — the caller fast-forwards
  // it with JobEvaluator::SkipExecutions(state.executions).
  TunerState SaveState() const;
  void RestoreState(const TunerState& s);

 private:
  Observation MakeObservation(const Configuration& config,
                              const JobEvaluator::Outcome& outcome,
                              int iteration) const;
  void EnsureAdvisor();

  const ConfigSpace* space_;
  JobEvaluator* evaluator_;
  TunerOptions options_;
  Configuration baseline_config_;
  TuningObjective objective_;  // with resolved constraints

  TunerPhase phase_;
  std::unique_ptr<Advisor> advisor_;
  std::optional<Observation> baseline_obs_;
  RunHistory applied_history_;
  EventLog last_event_log_;
  EventLogSummary last_event_summary_;
  int tuning_iterations_ = 0;
  int executions_ = 0;
  bool stopped_early_ = false;
  int restarts_ = 0;
  int degradation_streak_ = 0;

  // Suggestion awaiting a successful execution: set when the advisor is
  // consulted, kept across infra failures (bounded by retry.max_attempts)
  // so a retry re-runs the same configuration instead of burning a fresh
  // advisor draw.
  std::optional<Configuration> pending_config_;
  int pending_attempts_ = 0;

  // Deferred meta hooks.
  std::vector<Configuration> pending_warm_start_;
  SurrogateFactory pending_factory_;
  std::vector<std::pair<std::vector<double>, double>> pending_importance_;
};

}  // namespace sparktune
