// JobEvaluator: the boundary between the tuner and the execution substrate.
// One Run() = one online periodic execution of the Spark job with the given
// configuration. SimulatorEvaluator backs it with the Spark simulator and a
// data-size drift process.
#pragma once

#include <cstdint>

#include "common/failure.h"
#include "sparksim/drift.h"
#include "sparksim/event_log.h"
#include "sparksim/runtime_model.h"
#include "space/config_space.h"

namespace sparktune {

// Collapse the simulator's fine-grained failure taxonomy into the tuner's:
// every simulated failure is configuration-induced (the simulator has no
// infrastructure faults — those come from FaultInjectingEvaluator).
FailureKind MapSimFailure(SimFailureKind kind);

class JobEvaluator {
 public:
  struct Outcome {
    double runtime_sec = 0.0;
    double resource_rate = 0.0;  // R(x)
    double memory_gb_hours = 0.0;
    double cpu_core_hours = 0.0;
    // Typed failure taxonomy (common/failure.h): kOom/kTimeout are
    // configuration-induced; kInfra is an execution-substrate fault the
    // service watchdog retries without blaming the configuration.
    FailureKind failure = FailureKind::kNone;
    double data_size_gb = -1.0;  // <0 when unobservable
    double hours = -1.0;         // execution start, hours since task start
    EventLog event_log;

    bool failed() const { return IsFailure(failure); }
  };

  virtual ~JobEvaluator() = default;

  // Execute the job once with `config`; advances the evaluator's clock.
  virtual Outcome Run(const Configuration& config) = 0;

  // White-box resource rate R(x) of a configuration (no execution).
  virtual double ResourceRate(const Configuration& config) const = 0;

  // Expected input size of the next execution (<0 = unknown).
  virtual double NextDataSizeHintGb() const { return -1.0; }

  // Start time (hours since the task started) of the next execution;
  // always known for periodic jobs.
  virtual double NextHours() const { return -1.0; }

  // Fast-forward the clock by `n` executions without running anything.
  // Checkpoint restore uses this so a rebuilt evaluator resumes at the
  // same simulated time (and, for fault injectors, the same fault-schedule
  // cursor). Default: no-op for stateless evaluators.
  virtual void SkipExecutions(int n) { (void)n; }
};

struct SimulatorEvaluatorOptions {
  double period_hours = 1.0;  // one execution per period
  SimOptions sim;
  // Expose the true data size to the tuner (false simulates the paper's
  // data-privacy case where only time-of-day context is available).
  bool datasize_observable = true;
  uint64_t seed = 1;
};

class SimulatorEvaluator final : public JobEvaluator {
 public:
  SimulatorEvaluator(const ConfigSpace* space, WorkloadSpec workload,
                     ClusterSpec cluster, DriftModel drift,
                     SimulatorEvaluatorOptions options = {});

  Outcome Run(const Configuration& config) override;
  double ResourceRate(const Configuration& config) const override;
  double NextDataSizeHintGb() const override;
  double NextHours() const override;
  void SkipExecutions(int n) override { executions_ += n; }

  int executions() const { return executions_; }
  const WorkloadSpec& workload() const { return workload_; }
  const SparkSimulator& simulator() const { return simulator_; }

 private:
  double DataSizeForExecution(int index) const;

  const ConfigSpace* space_;
  WorkloadSpec workload_;
  DriftModel drift_;
  SimulatorEvaluatorOptions options_;
  SparkSimulator simulator_;
  int executions_ = 0;
};

}  // namespace sparktune
