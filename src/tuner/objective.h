// Generalized tuning objective (paper §3.2, Eq. 1):
//
//   min f(x) = T(x)^beta * R(x)^(1-beta)
//   s.t. T(x) <= T_max,  R(x) <= R_max
//
// beta = 1 minimizes runtime; beta = 0 minimizes the resource rate;
// beta = 0.5 is execution cost (sqrt(T*R), monotone in T*R); other values
// express user tendency (e.g. 0.7 leans toward runtime).
#pragma once

#include <limits>

#include "common/result.h"

namespace sparktune {

struct TuningObjective {
  double beta = 0.5;
  // Constraint thresholds; infinity = unconstrained.
  double runtime_max = std::numeric_limits<double>::infinity();
  double resource_max = std::numeric_limits<double>::infinity();
  // Objective value assigned to failed executions (set by the controller to
  // dominate any feasible value).
  double failure_penalty = std::numeric_limits<double>::infinity();

  // f(x) from observed runtime T and resource rate R.
  double Value(double runtime_sec, double resource_rate) const;

  // Partial derivatives of f wrt T and R (Eq. 9 building blocks).
  double DfDt(double runtime_sec, double resource_rate) const;
  double DfDr(double runtime_sec, double resource_rate) const;

  bool RuntimeFeasible(double runtime_sec) const {
    return runtime_sec <= runtime_max;
  }
  bool ResourceFeasible(double resource_rate) const {
    return resource_rate <= resource_max;
  }
  bool Feasible(double runtime_sec, double resource_rate) const {
    return RuntimeFeasible(runtime_sec) && ResourceFeasible(resource_rate);
  }

  bool has_runtime_constraint() const {
    return runtime_max < std::numeric_limits<double>::infinity();
  }
  bool has_resource_constraint() const {
    return resource_max < std::numeric_limits<double>::infinity();
  }

  Status Validate() const;
};

}  // namespace sparktune
