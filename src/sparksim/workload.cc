#include "sparksim/workload.h"

#include <algorithm>

namespace sparktune {

const char* StageOpName(StageOp op) {
  switch (op) {
    case StageOp::kSource: return "source";
    case StageOp::kMap: return "map";
    case StageOp::kReduceByKey: return "reduceByKey";
    case StageOp::kGroupByKey: return "groupByKey";
    case StageOp::kSortByKey: return "sortByKey";
    case StageOp::kJoin: return "join";
    case StageOp::kBroadcastJoin: return "broadcastJoin";
    case StageOp::kAggregate: return "aggregate";
    case StageOp::kSample: return "sample";
    case StageOp::kIterUpdate: return "iterUpdate";
    case StageOp::kCollect: return "collect";
    case StageOp::kSink: return "sink";
  }
  return "unknown";
}

bool IsShuffleOp(StageOp op) {
  switch (op) {
    case StageOp::kReduceByKey:
    case StageOp::kGroupByKey:
    case StageOp::kSortByKey:
    case StageOp::kJoin:
    case StageOp::kAggregate:
      return true;
    default:
      return false;
  }
}

int WorkloadSpec::DagDepth() const {
  std::vector<int> depth(stages.size(), 1);
  int best = stages.empty() ? 0 : 1;
  for (size_t i = 0; i < stages.size(); ++i) {
    for (int d : stages[i].deps) {
      depth[i] = std::max(depth[i], depth[static_cast<size_t>(d)] + 1);
    }
    best = std::max(best, depth[i]);
  }
  return best;
}

bool WorkloadSpec::Valid() const {
  if (stages.empty()) return false;
  for (size_t i = 0; i < stages.size(); ++i) {
    for (int d : stages[i].deps) {
      if (d < 0 || d >= static_cast<int>(i)) return false;
    }
    if (stages[i].iterations < 1) return false;
    if (stages[i].op == StageOp::kSource && stages[i].input_frac <= 0.0) {
      return false;
    }
  }
  return true;
}

}  // namespace sparktune
