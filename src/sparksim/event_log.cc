#include "sparksim/event_log.h"

#include <cmath>

namespace sparktune {

int EventLog::TotalTasks() const {
  int n = 0;
  for (const auto& s : stages) n += s.num_tasks * s.iterations;
  return n;
}

double EventLog::TotalShuffleMb() const {
  double mb = 0.0;
  for (const auto& s : stages) mb += s.shuffle_read_mb + s.shuffle_write_mb;
  return mb;
}

double EventLog::TotalSpillMb() const {
  double mb = 0.0;
  for (const auto& s : stages) mb += s.spill_mb;
  return mb;
}

bool EventLogLooksSane(const EventLog& log) {
  if (log.stages.empty()) return false;
  if (!std::isfinite(log.data_size_gb) || log.data_size_gb < 0.0) {
    return false;
  }
  const auto bad = [](double v) { return !std::isfinite(v) || v < 0.0; };
  for (const auto& s : log.stages) {
    if (s.num_tasks < 0 || s.iterations < 1) return false;
    if (bad(s.duration_sec) || bad(s.input_mb) || bad(s.output_mb) ||
        bad(s.shuffle_read_mb) || bad(s.shuffle_write_mb) ||
        bad(s.spill_mb)) {
      return false;
    }
  }
  return true;
}

EventLogSummary SummarizeEventLog(const EventLog& log) {
  EventLogSummary s;
  s.valid = EventLogLooksSane(log);
  s.is_sql = log.is_sql;
  s.data_size_gb = log.data_size_gb;
  s.num_stages = static_cast<int>(log.stages.size());
  s.total_tasks = log.TotalTasks();
  for (const auto& st : log.stages) {
    s.duration_sec += st.duration_sec * st.iterations;
  }
  s.shuffle_mb = log.TotalShuffleMb();
  s.spill_mb = log.TotalSpillMb();
  return s;
}

TaskMetricSummary Summarize(const std::vector<double>& samples) {
  TaskMetricSummary s;
  if (samples.empty()) return s;
  s.mean = Mean(samples);
  s.stddev = Stddev(samples);
  s.min = Min(samples);
  s.max = Max(samples);
  s.p50 = Quantile(samples, 0.5);
  s.p90 = Quantile(samples, 0.9);
  s.skewness = Skewness(samples);
  s.total = Sum(samples);
  return s;
}

}  // namespace sparktune
