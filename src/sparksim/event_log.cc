#include "sparksim/event_log.h"

namespace sparktune {

int EventLog::TotalTasks() const {
  int n = 0;
  for (const auto& s : stages) n += s.num_tasks * s.iterations;
  return n;
}

double EventLog::TotalShuffleMb() const {
  double mb = 0.0;
  for (const auto& s : stages) mb += s.shuffle_read_mb + s.shuffle_write_mb;
  return mb;
}

double EventLog::TotalSpillMb() const {
  double mb = 0.0;
  for (const auto& s : stages) mb += s.spill_mb;
  return mb;
}

TaskMetricSummary Summarize(const std::vector<double>& samples) {
  TaskMetricSummary s;
  if (samples.empty()) return s;
  s.mean = Mean(samples);
  s.stddev = Stddev(samples);
  s.min = Min(samples);
  s.max = Max(samples);
  s.p50 = Quantile(samples, 0.5);
  s.p90 = Quantile(samples, 0.9);
  s.skewness = Skewness(samples);
  s.total = Sum(samples);
  return s;
}

}  // namespace sparktune
