#include "sparksim/drift.h"

#include <cmath>
#include <numbers>

#include "common/rng.h"

namespace sparktune {

double DriftModel::Multiplier(double hours, uint64_t seed,
                              int execution_index) const {
  double m = base_multiplier;
  if (daily_amplitude != 0.0) {
    m *= 1.0 + daily_amplitude *
                   std::sin(2.0 * std::numbers::pi * (hours + phase_hours) /
                            24.0);
  }
  if (weekly_amplitude != 0.0) {
    m *= 1.0 + weekly_amplitude *
                   std::sin(2.0 * std::numbers::pi * hours / (24.0 * 7.0));
  }
  if (trend_per_day != 0.0) {
    m *= 1.0 + trend_per_day * hours / 24.0;
  }
  if (noise_sigma > 0.0) {
    Rng rng(seed ^ (0x517CC1B727220A95ULL *
                    static_cast<uint64_t>(execution_index + 1)));
    m *= rng.LogNormal(-0.5 * noise_sigma * noise_sigma, noise_sigma);
  }
  return m > 0.0 ? m : 1e-3;
}

DriftModel DriftModel::None() { return DriftModel{}; }

DriftModel DriftModel::Diurnal(double amplitude, double noise) {
  DriftModel d;
  d.daily_amplitude = amplitude;
  d.noise_sigma = noise;
  return d;
}

}  // namespace sparktune
