#include "sparksim/spark_conf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sparktune {

ConfigSpace BuildSparkSpace(const ClusterSpec& cluster) {
  ConfigSpace space;
  namespace sp = spark_param;

  // Resource shape. Instance cap: what the cluster could hold with the
  // smallest executors, bounded to keep the space sane.
  int max_instances =
      std::clamp(cluster.total_cores(), 8, 1024);
  int default_instances = std::max(2, cluster.num_nodes * 2);
  int max_cores = std::min(8, cluster.cores_per_node);
  double max_exec_mem =
      std::clamp(cluster.mem_per_node_gb / 2.0, 4.0, 48.0);

  auto add = [&space](Parameter p) {
    Status s = space.Add(std::move(p));
    assert(s.ok());
    (void)s;
  };

  add(Parameter::Int(sp::kExecutorInstances, 1, max_instances,
                     default_instances, /*log_scale=*/true));
  add(Parameter::Int(sp::kExecutorCores, 1, max_cores, 2));
  add(Parameter::Int(sp::kExecutorMemory, 1,
                     static_cast<int64_t>(max_exec_mem), 4,
                     /*log_scale=*/true));
  add(Parameter::Int(sp::kExecutorMemoryOverhead, 384, 4096, 384,
                     /*log_scale=*/true));
  add(Parameter::Int(sp::kDriverCores, 1, 8, 2));
  add(Parameter::Int(sp::kDriverMemory, 1, 16, 4, /*log_scale=*/true));
  // Spark defaults spark.default.parallelism to the total core count for
  // distributed shuffles.
  int default_parallelism = std::clamp(cluster.total_cores(), 8, 2000);
  add(Parameter::Int(sp::kDefaultParallelism, 8, 2000, default_parallelism,
                     /*log_scale=*/true));
  add(Parameter::Int(sp::kSqlShufflePartitions, 8, 2000, 200,
                     /*log_scale=*/true));
  add(Parameter::Float(sp::kMemoryFraction, 0.3, 0.9, 0.6));
  add(Parameter::Float(sp::kMemoryStorageFraction, 0.1, 0.9, 0.5));
  add(Parameter::Bool(sp::kShuffleCompress, true));
  add(Parameter::Bool(sp::kShuffleSpillCompress, true));
  add(Parameter::Bool(sp::kBroadcastCompress, true));
  add(Parameter::Bool(sp::kRddCompress, false));
  add(Parameter::Categorical(sp::kIoCompressionCodec,
                             {"lz4", "snappy", "zstd"}, 0));
  add(Parameter::Categorical(sp::kSerializer,
                             {"org.apache.spark.serializer.JavaSerializer",
                              "org.apache.spark.serializer.KryoSerializer"},
                             0));
  add(Parameter::Int(sp::kKryoBufferKb, 16, 256, 64, /*log_scale=*/true));
  add(Parameter::Int(sp::kKryoBufferMaxMb, 8, 256, 64, /*log_scale=*/true));
  add(Parameter::Int(sp::kReducerMaxSizeInFlight, 8, 256, 48,
                     /*log_scale=*/true));
  add(Parameter::Int(sp::kShuffleFileBuffer, 8, 256, 32, /*log_scale=*/true));
  add(Parameter::Int(sp::kShuffleSortBypassMergeThreshold, 100, 1000, 200));
  add(Parameter::Int(sp::kShuffleIoNumConnectionsPerPeer, 1, 8, 1));
  add(Parameter::Bool(sp::kSpeculation, false));
  add(Parameter::Float(sp::kSpeculationMultiplier, 1.1, 5.0, 1.5));
  add(Parameter::Float(sp::kLocalityWait, 0.0, 10.0, 3.0));
  add(Parameter::Int(sp::kSchedulerReviveInterval, 100, 5000, 1000,
                     /*log_scale=*/true));
  add(Parameter::Int(sp::kTaskMaxFailures, 1, 8, 4));
  add(Parameter::Int(sp::kBroadcastBlockSize, 1, 16, 4));
  add(Parameter::Int(sp::kStorageMemoryMapThreshold, 1, 10, 2));
  add(Parameter::Int(sp::kNetworkTimeout, 60, 600, 120));

  assert(static_cast<int>(space.size()) == kNumSparkParams);
  return space;
}

SparkConf DecodeSparkConf(const ConfigSpace& space, const Configuration& c) {
  namespace sp = spark_param;
  auto get = [&](const char* name) { return space.Get(c, name); };
  SparkConf conf;
  conf.executor_instances = static_cast<int>(get(sp::kExecutorInstances));
  conf.executor_cores = static_cast<int>(get(sp::kExecutorCores));
  conf.executor_memory_gb = get(sp::kExecutorMemory);
  conf.executor_memory_overhead_mb = get(sp::kExecutorMemoryOverhead);
  conf.driver_cores = static_cast<int>(get(sp::kDriverCores));
  conf.driver_memory_gb = get(sp::kDriverMemory);
  conf.default_parallelism = static_cast<int>(get(sp::kDefaultParallelism));
  conf.sql_shuffle_partitions =
      static_cast<int>(get(sp::kSqlShufflePartitions));
  conf.memory_fraction = get(sp::kMemoryFraction);
  conf.memory_storage_fraction = get(sp::kMemoryStorageFraction);
  conf.shuffle_compress = get(sp::kShuffleCompress) >= 0.5;
  conf.shuffle_spill_compress = get(sp::kShuffleSpillCompress) >= 0.5;
  conf.broadcast_compress = get(sp::kBroadcastCompress) >= 0.5;
  conf.rdd_compress = get(sp::kRddCompress) >= 0.5;
  conf.io_codec = static_cast<Codec>(
      static_cast<int>(get(sp::kIoCompressionCodec)));
  conf.serializer =
      static_cast<Serializer>(static_cast<int>(get(sp::kSerializer)));
  conf.kryo_buffer_kb = get(sp::kKryoBufferKb);
  conf.kryo_buffer_max_mb = get(sp::kKryoBufferMaxMb);
  conf.reducer_max_size_in_flight_mb = get(sp::kReducerMaxSizeInFlight);
  conf.shuffle_file_buffer_kb = get(sp::kShuffleFileBuffer);
  conf.shuffle_sort_bypass_merge_threshold =
      static_cast<int>(get(sp::kShuffleSortBypassMergeThreshold));
  conf.shuffle_io_num_connections_per_peer =
      static_cast<int>(get(sp::kShuffleIoNumConnectionsPerPeer));
  conf.speculation = get(sp::kSpeculation) >= 0.5;
  conf.speculation_multiplier = get(sp::kSpeculationMultiplier);
  conf.locality_wait_sec = get(sp::kLocalityWait);
  conf.scheduler_revive_interval_ms = get(sp::kSchedulerReviveInterval);
  conf.task_max_failures = static_cast<int>(get(sp::kTaskMaxFailures));
  conf.broadcast_block_size_mb = get(sp::kBroadcastBlockSize);
  conf.storage_memory_map_threshold_mb =
      get(sp::kStorageMemoryMapThreshold);
  conf.network_timeout_sec = get(sp::kNetworkTimeout);
  return conf;
}

double ResourceFunction(const SparkConf& conf, double mem_weight) {
  double executors =
      static_cast<double>(conf.executor_instances) *
      (static_cast<double>(conf.executor_cores) +
       mem_weight * conf.container_mem_gb());
  double driver = static_cast<double>(conf.driver_cores) +
                  mem_weight * conf.driver_memory_gb;
  return executors + driver;
}

std::vector<std::string> ExpertParameterRanking() {
  namespace sp = spark_param;
  // Mirrors the paper's Table 5 ordering for the head of the list.
  return {
      sp::kExecutorInstances,
      sp::kExecutorMemory,
      sp::kMemoryStorageFraction,
      sp::kDefaultParallelism,
      sp::kMemoryFraction,
      sp::kExecutorCores,
      sp::kIoCompressionCodec,
      sp::kShuffleFileBuffer,
      sp::kShuffleCompress,
      sp::kSerializer,
      sp::kSqlShufflePartitions,
      sp::kExecutorMemoryOverhead,
      sp::kReducerMaxSizeInFlight,
      sp::kRddCompress,
      sp::kShuffleSpillCompress,
      sp::kSpeculation,
      sp::kLocalityWait,
      sp::kShuffleIoNumConnectionsPerPeer,
      sp::kKryoBufferKb,
      sp::kKryoBufferMaxMb,
      sp::kDriverMemory,
      sp::kDriverCores,
      sp::kBroadcastCompress,
      sp::kBroadcastBlockSize,
      sp::kShuffleSortBypassMergeThreshold,
      sp::kSpeculationMultiplier,
      sp::kSchedulerReviveInterval,
      sp::kTaskMaxFailures,
      sp::kStorageMemoryMapThreshold,
      sp::kNetworkTimeout,
  };
}

}  // namespace sparktune
