// Simulated SparkEventLog: per-stage records with per-task metric
// distributions. This is the raw material for the paper's 75 meta-features
// (§5.1), mirroring what the event-log parser of Prats et al. extracts.
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"
#include "sparksim/workload.h"

namespace sparktune {

// Distribution summary of one per-task metric within a stage run.
struct TaskMetricSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double skewness = 0.0;
  double total = 0.0;
};

// One executed stage (all iterations of a StageSpec collapse into one
// record with iteration count).
struct StageLog {
  std::string name;
  StageOp op = StageOp::kMap;
  int num_tasks = 0;
  int iterations = 1;
  double duration_sec = 0.0;
  double input_mb = 0.0;
  double output_mb = 0.0;
  double shuffle_read_mb = 0.0;
  double shuffle_write_mb = 0.0;
  double spill_mb = 0.0;
  bool cached = false;

  // Per-task metric distributions.
  TaskMetricSummary task_duration_sec;
  TaskMetricSummary task_gc_sec;
  TaskMetricSummary task_shuffle_read_mb;
  TaskMetricSummary task_shuffle_write_mb;
  TaskMetricSummary task_spill_mb;
  TaskMetricSummary task_cpu_fraction;   // cpu time / task time
  TaskMetricSummary task_io_fraction;    // io+net time / task time
  TaskMetricSummary task_input_mb;
};

struct EventLog {
  std::string app_name;
  bool is_sql = false;
  double data_size_gb = 0.0;
  std::vector<StageLog> stages;

  int TotalTasks() const;
  double TotalShuffleMb() const;
  double TotalSpillMb() const;
};

// Compact digest of one executed run's event log. A retained EventLog
// costs kilobytes per task (stage names plus eight metric distributions
// per stage); a fleet of 10^6 tasks cannot afford that between periods.
// The digest keeps what diagnostics and sanity screens need after
// meta-feature extraction has consumed the full log.
struct EventLogSummary {
  bool valid = false;  // a sane log was summarized
  bool is_sql = false;
  double data_size_gb = 0.0;
  int num_stages = 0;
  int total_tasks = 0;
  double duration_sec = 0.0;
  double shuffle_mb = 0.0;
  double spill_mb = 0.0;
};

EventLogSummary SummarizeEventLog(const EventLog& log);

// Helper: summarize a sample vector into a TaskMetricSummary.
TaskMetricSummary Summarize(const std::vector<double>& samples);

// Sanity screen for event logs arriving from the execution substrate: a
// truncated log has no stages, a corrupted one carries non-finite or
// negative stage metrics. Consumers (meta-feature extraction) must skip
// logs that fail this check instead of learning from garbage.
bool EventLogLooksSane(const EventLog& log);

}  // namespace sparktune
