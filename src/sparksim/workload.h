// Workload model: a Spark job is a DAG of stages; each stage has an operator
// type and data-flow/compute characteristics. Presets for HiBench live in
// hibench.h; synthetic production tasks in production.h.
#pragma once

#include <string>
#include <vector>

namespace sparktune {

// Operator categories, mirroring the action/transformation mix that the
// paper's meta-features summarize from SparkEventLog (§5.1).
enum class StageOp {
  kSource,        // read input (textFile / table scan)
  kMap,           // map / filter / flatMap pipelines
  kReduceByKey,   // combine-style shuffle
  kGroupByKey,    // wide shuffle without map-side combine
  kSortByKey,     // range-partitioned sort shuffle
  kJoin,          // shuffle hash / sort-merge join
  kBroadcastJoin, // map-side join with broadcast
  kAggregate,     // SQL-style hash aggregation
  kSample,        // sampling / projection
  kIterUpdate,    // per-iteration model/rank update (ML, graph)
  kCollect,       // action pulling results to the driver
  kSink,          // write output
};

const char* StageOpName(StageOp op);
// True for operators whose input arrives via shuffle.
bool IsShuffleOp(StageOp op);

struct StageSpec {
  std::string name;
  StageOp op = StageOp::kMap;
  std::vector<int> deps;  // indices of parent stages in the DAG

  // For source stages: fraction of the job input this stage reads.
  double input_frac = 0.0;
  // Output bytes = input bytes * output_ratio.
  double output_ratio = 1.0;
  // Bytes written to the shuffle system per input byte (0 for result/sink
  // stages).
  double shuffle_write_ratio = 0.0;
  // Compute intensity: CPU-seconds per MB of stage input on a speed-1.0
  // core.
  double cpu_cost_per_mb = 0.01;
  // Peak per-task working set as a multiple of per-task input bytes
  // (hash tables / sort buffers / model state).
  double mem_per_task_factor = 1.5;
  // Whether the stage caches its output for reuse by iterations.
  bool cached = false;
  // Times the stage body repeats (iterative ML / graph workloads).
  int iterations = 1;
  // Lognormal sigma of per-task data skew (0 = perfectly balanced).
  double skew = 0.25;
};

struct WorkloadSpec {
  std::string name;
  std::string family;  // "micro", "ml", "sql", "websearch", "graph", "etl"
  bool is_sql = false;
  // Nominal input size; the actual per-run size is nominal * drift factor.
  double input_gb = 100.0;
  std::vector<StageSpec> stages;

  // Longest path length in the stage DAG (1 for a single stage).
  int DagDepth() const;
  // Basic structural validation (deps in range, acyclic by construction:
  // deps must point to earlier stages).
  bool Valid() const;
};

}  // namespace sparktune
