// Data-size drift for periodic jobs (paper §3.3 "Dynamic Workload
// Support"): the input of an hourly/daily job follows diurnal and weekly
// patterns plus noise and a slow trend.
#pragma once

#include <cstdint>

namespace sparktune {

struct DriftModel {
  double base_multiplier = 1.0;
  double daily_amplitude = 0.0;    // fraction of base, sinusoidal over 24h
  double weekly_amplitude = 0.0;   // fraction of base, sinusoidal over 7d
  double noise_sigma = 0.0;        // lognormal run-to-run noise
  double trend_per_day = 0.0;      // linear growth fraction per day
  double phase_hours = 0.0;

  // Multiplier for an execution that starts `hours` after t0. Noise is
  // drawn deterministically from (seed, execution index).
  double Multiplier(double hours, uint64_t seed, int execution_index) const;

  // Stationary model (no drift).
  static DriftModel None();
  // Typical hourly production job: +-25% diurnal swing, 8% noise.
  static DriftModel Diurnal(double amplitude = 0.25, double noise = 0.08);
};

}  // namespace sparktune
