// Synthetic production task populations standing in for the paper's 25K
// Tencent tasks (Figure 2, Tables 2-3). Each task is a periodic Spark or
// SparkSQL job with a plausibly over-provisioned "manual" configuration
// (what the paper's big-data engineers set before auto-tuning) and a
// diurnal data-size drift.
#pragma once

#include <string>
#include <vector>

#include "space/config_space.h"
#include "sparksim/cluster.h"
#include "sparksim/drift.h"
#include "sparksim/workload.h"

namespace sparktune {

struct ProductionTask {
  std::string id;
  WorkloadSpec workload;
  ClusterSpec cluster;
  DriftModel drift;
  // Manual configuration, expressed in the space BuildSparkSpace(cluster).
  Configuration manual_config;
  double period_hours = 1.0;  // 1 = hourly, 24 = daily
};

struct ProductionFleetOptions {
  int num_tasks = 2000;
  // Fraction of hourly SparkSQL tasks; the rest are daily Spark ETL jobs.
  double sql_fraction = 0.5;
};

// Generate `options.num_tasks` synthetic tasks. Deterministic in `seed`.
std::vector<ProductionTask> GenerateProductionFleet(
    const ProductionFleetOptions& options, uint64_t seed);

// The eight advertisement-business tasks of Table 2, with the paper's
// manual executor settings (instances/cores/memory) baked into the manual
// configurations. First four: daily Spark jobs; last four: hourly SparkSQL.
std::vector<ProductionTask> EightAdvertisementTasks();

}  // namespace sparktune
