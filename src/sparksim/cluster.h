// Cluster description and executor placement for the Spark simulator.
#pragma once

#include <cstdint>
#include <string>

namespace sparktune {

// Static description of the computing cluster a job runs on. Speeds are
// relative: core_speed 1.0 is the reference CPU; disk/net are MB/s of
// per-executor usable bandwidth.
struct ClusterSpec {
  std::string name = "cluster";
  int num_nodes = 4;
  int cores_per_node = 96;
  double mem_per_node_gb = 512.0;
  double core_speed = 1.0;
  double disk_mbps = 400.0;
  double net_mbps = 1100.0;

  // Total schedulable resources.
  int total_cores() const { return num_nodes * cores_per_node; }
  double total_mem_gb() const { return num_nodes * mem_per_node_gb; }

  // The 4-node HiBench cluster from the paper (2x AMD EPYC 7K62 48-core,
  // 512 GB per node).
  static ClusterSpec HiBenchCluster();
  // A production resource group: 100 units x (20 cores, 50 GB).
  static ClusterSpec ProductionGroup();
  // Scaled-down group for small hourly SQL tasks.
  static ClusterSpec SmallSqlGroup();
};

// How many executors of the requested shape actually fit on the cluster.
// YARN-style packing: per node, limited by both cores and memory
// (executor memory + overhead); requested executors beyond capacity are
// simply not granted.
struct Placement {
  int granted_executors = 0;
  bool fully_granted = false;
};

Placement PlaceExecutors(const ClusterSpec& cluster, int requested,
                         int cores_per_executor, double mem_per_executor_gb);

}  // namespace sparktune
