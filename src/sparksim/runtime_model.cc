#include "sparksim/runtime_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/normal.h"

namespace sparktune {

namespace {

// Compression codec characteristics (size ratio after compression, and
// MB/s per core for compress / decompress).
struct CodecProps {
  double ratio;
  double compress_mbps;
  double decompress_mbps;
};

CodecProps CodecOf(Codec c) {
  switch (c) {
    case Codec::kLz4:
      return {0.55, 750.0, 2800.0};
    case Codec::kSnappy:
      return {0.60, 800.0, 3000.0};
    case Codec::kZstd:
      return {0.40, 300.0, 900.0};
  }
  return {0.55, 750.0, 2800.0};
}

// Serializer characteristics: CPU-seconds per MB serialized and the size of
// serialized data relative to Java serialization.
struct SerProps {
  double cpu_per_mb;
  double size_ratio;
  double gc_churn;  // garbage pressure multiplier
};

SerProps SerOf(const SparkConf& conf) {
  if (conf.serializer == Serializer::kKryo) {
    // Undersized kryo buffers force re-allocations.
    double buffer_penalty =
        1.0 + 0.12 * std::max(0.0, 32.0 / conf.kryo_buffer_kb - 1.0);
    return {0.0065 * buffer_penalty, 0.72, 1.0};
  }
  return {0.0115, 1.0, 1.18};
}

double Ramp(double x) { return x > 0.0 ? x : 0.0; }

// Expected maximum multiplier of `n` iid lognormal(mu=-s^2/2, s) draws,
// approximated by the n/(n+1) quantile.
double LognormalMaxQuantile(double sigma, int n) {
  if (sigma <= 0.0 || n <= 1) return 1.0;
  double p = static_cast<double>(n) / (static_cast<double>(n) + 1.0);
  return std::exp(sigma * NormInvCdf(p) - 0.5 * sigma * sigma);
}

struct StageRun {
  double input_mb = 0.0;
  double output_mb = 0.0;
  double shuffle_write_mb = 0.0;  // post-serialization, pre-compression
  int partitions = 1;
  double finish_time_sec = 0.0;
};

}  // namespace

const char* SimFailureKindName(SimFailureKind kind) {
  switch (kind) {
    case SimFailureKind::kNone: return "none";
    case SimFailureKind::kNoExecutors: return "no-executors";
    case SimFailureKind::kExecutorOom: return "executor-oom";
    case SimFailureKind::kContainerKill: return "container-kill";
    case SimFailureKind::kDriverOom: return "driver-oom";
    case SimFailureKind::kFetchTimeout: return "fetch-timeout";
  }
  return "unknown";
}

SparkSimulator::SparkSimulator(ClusterSpec cluster, SimOptions options)
    : cluster_(std::move(cluster)), options_(options) {}

ExecutionResult SparkSimulator::Execute(const WorkloadSpec& workload,
                                        const SparkConf& conf,
                                        double data_size_gb,
                                        uint64_t seed) const {
  assert(workload.Valid());
  Rng rng(seed);

  ExecutionResult result;
  result.data_size_gb = data_size_gb;
  result.resource_rate = ResourceFunction(conf, options_.mem_weight);
  result.event_log.app_name = workload.name;
  result.event_log.is_sql = workload.is_sql;
  result.event_log.data_size_gb = data_size_gb;

  const Placement placement =
      PlaceExecutors(cluster_, conf.executor_instances, conf.executor_cores,
                     conf.container_mem_gb());
  result.granted_executors = placement.granted_executors;
  if (placement.granted_executors == 0) {
    result.failed = true;
    result.failure = SimFailureKind::kNoExecutors;
    result.runtime_sec = 120.0;  // fast application-master abort
    result.cpu_core_hours = conf.driver_cores * result.runtime_sec / 3600.0;
    result.memory_gb_hours = conf.driver_memory_gb * result.runtime_sec / 3600.0;
    return result;
  }

  const int executors = placement.granted_executors;
  const int slots = executors * conf.executor_cores;
  const double heap_mb = conf.executor_memory_gb * 1024.0;
  // Unified memory region (Spark: (heap - 300MB) * memory.fraction).
  const double unified_mb =
      std::max(heap_mb * 0.25, (heap_mb - 300.0) * conf.memory_fraction);
  const double storage_region_mb = unified_mb * conf.memory_storage_fraction;

  const CodecProps codec = CodecOf(conf.io_codec);
  const SerProps ser = SerOf(conf);

  const double core_speed = cluster_.core_speed;
  const double disk_mbps = cluster_.disk_mbps;
  const double net_mbps = cluster_.net_mbps;

  // Whether any stage caches output (storage region actually in use).
  bool any_cached = false;
  double cache_demand_mb = 0.0;

  std::vector<StageRun> runs(workload.stages.size());
  const double job_input_mb = data_size_gb * 1024.0;

  SimFailureKind failure = SimFailureKind::kNone;
  double elapsed = 0.0;

  // Driver + executor launch overhead: AM negotiation plus container spin-up
  // grows mildly with the number of executors.
  elapsed += 5.0 + 0.012 * executors +
             0.3 * conf.scheduler_revive_interval_ms / 1000.0;

  for (size_t si = 0; si < workload.stages.size() && failure == SimFailureKind::kNone;
       ++si) {
    const StageSpec& spec = workload.stages[si];
    StageRun& run = runs[si];

    // ---- Data flow ----
    double shuffle_read_total_mb = 0.0;
    double parents_finish = 0.0;
    if (spec.op == StageOp::kSource) {
      run.input_mb = job_input_mb * spec.input_frac;
    } else {
      double in = 0.0;
      for (int d : spec.deps) {
        const StageRun& dep = runs[static_cast<size_t>(d)];
        in += dep.output_mb;
        shuffle_read_total_mb += dep.shuffle_write_mb;
        parents_finish = std::max(parents_finish, dep.finish_time_sec);
      }
      run.input_mb = in;
    }
    run.output_mb = run.input_mb * spec.output_ratio;
    // Serialized shuffle output.
    run.shuffle_write_mb =
        run.input_mb * spec.shuffle_write_ratio * ser.size_ratio;

    // ---- Partitioning ----
    int partitions;
    if (spec.op == StageOp::kSource) {
      partitions = static_cast<int>(std::ceil(run.input_mb / 128.0));
    } else if (IsShuffleOp(spec.op)) {
      partitions = workload.is_sql ? conf.sql_shuffle_partitions
                                   : conf.default_parallelism;
    } else {
      partitions = spec.deps.empty()
                       ? conf.default_parallelism
                       : runs[static_cast<size_t>(spec.deps[0])].partitions;
    }
    partitions = std::clamp(partitions, 1, 100000);
    run.partitions = partitions;

    const double mb_per_task = run.input_mb / partitions;

    // ---- Memory model ----
    // Execution memory available per task: storage borrows are possible
    // when nothing is cached.
    double storage_in_use_frac = any_cached ? 1.0 : 0.15;
    double exec_mem_per_task =
        (unified_mb - storage_region_mb * storage_in_use_frac) /
        std::max(1, conf.executor_cores);
    exec_mem_per_task = std::max(exec_mem_per_task, 16.0);
    double working_set_mb = spec.mem_per_task_factor * mb_per_task;
    // Sort-based paths also hold shuffle buffers.
    if (spec.shuffle_write_ratio > 0.0) {
      working_set_mb += conf.shuffle_file_buffer_kb / 1024.0 *
                        std::min(partitions, 256);
    }

    double spill_frac = 0.0;
    if (working_set_mb > exec_mem_per_task) {
      spill_frac = 1.0 - exec_mem_per_task / working_set_mb;
    }

    // Executor OOM risk: hash-heavy operators degrade sharply when the
    // working set dwarfs the execution memory (merge passes cannot save
    // pathological ratios).
    double oom_pressure = working_set_mb /
                          (exec_mem_per_task +
                           0.25 * conf.executor_memory_overhead_mb);
    bool oom_prone = spec.op == StageOp::kGroupByKey ||
                     spec.op == StageOp::kJoin ||
                     spec.op == StageOp::kAggregate ||
                     spec.op == StageOp::kIterUpdate;
    double task_fail_p = 0.0;
    if (oom_prone) {
      task_fail_p = std::clamp(0.25 * Ramp(oom_pressure - 6.0), 0.0, 0.9);
    }

    // Container kill risk: off-heap usage vs memoryOverhead.
    double offheap_mb = 220.0 + 0.02 * heap_mb +
                        conf.reducer_max_size_in_flight_mb *
                            conf.shuffle_io_num_connections_per_peer * 0.5;
    double container_kill_p =
        std::clamp(0.4 * Ramp(offheap_mb / conf.executor_memory_overhead_mb -
                              1.15),
                   0.0, 0.85);

    // ---- Per-task time ----
    // CPU.
    double gc_pressure =
        (working_set_mb * conf.executor_cores) / std::max(heap_mb, 1.0);
    double gc_factor = 1.0 +
                       0.35 * ser.gc_churn * Ramp(gc_pressure - 0.6) +
                       0.008 * Ramp(conf.executor_memory_gb - 24.0);
    double cpu_sec =
        spec.cpu_cost_per_mb * mb_per_task / core_speed * gc_factor;

    // Source read.
    double io_sec = 0.0;
    if (spec.op == StageOp::kSource) {
      // Locality: few executors spread over many nodes miss more often;
      // waiting trades delay for local disk bandwidth.
      double miss = std::exp(-static_cast<double>(executors) /
                             std::max(1, cluster_.num_nodes));
      double wait = std::min(conf.locality_wait_sec, 3.0) * miss;
      double remote_frac = miss * Ramp(1.0 - conf.locality_wait_sec / 3.0);
      double read_mbps =
          (1.0 - remote_frac) * disk_mbps + remote_frac * net_mbps * 0.5;
      io_sec += mb_per_task / read_mbps + wait * 0.15;
    }

    // Shuffle read.
    if (IsShuffleOp(spec.op) && shuffle_read_total_mb > 0.0) {
      double sr_mb = shuffle_read_total_mb / partitions;
      double wire_mb = conf.shuffle_compress ? sr_mb * codec.ratio : sr_mb;
      double conn_boost =
          std::sqrt(static_cast<double>(conf.shuffle_io_num_connections_per_peer));
      double net_sec = wire_mb / (net_mbps / std::max(1, conf.executor_cores) *
                                  conn_boost);
      double fetch_waves =
          std::ceil(sr_mb / std::max(1.0, conf.reducer_max_size_in_flight_mb));
      net_sec += 0.02 * fetch_waves;
      if (net_sec > conf.network_timeout_sec) {
        failure = SimFailureKind::kFetchTimeout;
      }
      io_sec += net_sec;
      if (conf.shuffle_compress) {
        cpu_sec += wire_mb / codec.decompress_mbps / core_speed;
      }
      cpu_sec += sr_mb * ser.cpu_per_mb / core_speed;  // deserialization
    }

    // Shuffle write.
    if (run.shuffle_write_mb > 0.0) {
      double sw_mb = run.shuffle_write_mb / partitions;
      cpu_sec += sw_mb * ser.cpu_per_mb / core_speed;  // serialization
      double disk_mb = sw_mb;
      if (conf.shuffle_compress) {
        cpu_sec += sw_mb / codec.compress_mbps / core_speed;
        disk_mb *= codec.ratio;
      }
      // Small file buffers flush more often.
      double buffer_factor =
          1.0 + 0.18 * Ramp(std::log2(32.0 / conf.shuffle_file_buffer_kb));
      io_sec += disk_mb / disk_mbps * buffer_factor;
      // Sort vs bypass-merge path.
      if (partitions > conf.shuffle_sort_bypass_merge_threshold) {
        cpu_sec += sw_mb * 0.0035 * std::log2(static_cast<double>(partitions)) /
                   core_speed;
      } else {
        io_sec += disk_mb / disk_mbps * 0.12;  // many per-reducer files
      }
    }

    // Spill.
    double spill_mb_task = 0.0;
    if (spill_frac > 0.0) {
      spill_mb_task = mb_per_task * spill_frac;
      double disk_mb = spill_mb_task;
      cpu_sec += spill_mb_task * ser.cpu_per_mb / core_speed;
      if (conf.shuffle_spill_compress) {
        cpu_sec += spill_mb_task / codec.compress_mbps / core_speed +
                   spill_mb_task * codec.ratio / codec.decompress_mbps /
                       core_speed;
        disk_mb *= codec.ratio;
      }
      io_sec += 2.0 * disk_mb / disk_mbps;       // write + re-read
      cpu_sec *= 1.0 + 0.2 * spill_frac;          // merge passes
    }

    // Broadcast distribution cost.
    if (spec.op == StageOp::kBroadcastJoin) {
      double bc_mb = std::max(1.0, run.input_mb * 0.02);
      if (conf.broadcast_compress) bc_mb *= codec.ratio;
      double block_overhead =
          1.0 + 0.06 * Ramp(4.0 / conf.broadcast_block_size_mb - 1.0);
      io_sec += bc_mb / net_mbps *
                std::log2(static_cast<double>(executors) + 1.0) *
                block_overhead / std::max(1, partitions);
    }

    double task_sec = std::max(0.015, cpu_sec + io_sec);

    // Retries inflate expected task time.
    if (task_fail_p > 0.0) {
      task_sec /= std::max(0.1, 1.0 - task_fail_p);
      // Permanent task failure ends the job.
      double perm_fail =
          std::pow(task_fail_p, std::max(1, conf.task_max_failures));
      double job_fail_p =
          1.0 - std::pow(1.0 - perm_fail, std::min(partitions, 4000));
      if (rng.Bernoulli(std::clamp(job_fail_p, 0.0, 1.0))) {
        failure = SimFailureKind::kExecutorOom;
      }
    }
    if (container_kill_p > 0.0 &&
        rng.Bernoulli(std::clamp(
            container_kill_p * std::min(1.0, partitions / 64.0) * 0.5, 0.0,
            0.95))) {
      failure = SimFailureKind::kContainerKill;
    }

    // Driver-side collect.
    if (spec.op == StageOp::kCollect) {
      double collect_mb = run.output_mb;
      if (collect_mb > conf.driver_memory_gb * 1024.0 * 0.6) {
        failure = SimFailureKind::kDriverOom;
      }
    }

    // ---- Wave model + stragglers ----
    int tasks = partitions;
    double waves = std::ceil(static_cast<double>(tasks) /
                             static_cast<double>(slots));
    double tail_mult = LognormalMaxQuantile(spec.skew, std::min(tasks, slots));
    double tail_sec = task_sec * (tail_mult - 1.0);
    double cpu_overhead_frac = 0.0;
    if (conf.speculation) {
      // Speculative copies trim the straggler tail at extra CPU cost; an
      // aggressive multiplier trims more.
      // Only the handful of speculative copies cost extra CPU; the tail
      // shrinks toward the median task.
      double trim = std::clamp(1.6 / conf.speculation_multiplier, 0.25, 0.85);
      tail_sec *= 1.0 - trim * 0.7;
      cpu_overhead_frac += 0.008 * trim;
    }

    double sched_sec = 0.10 + tasks * 0.002 /
                                  std::max(1, conf.driver_cores) +
                       waves * conf.scheduler_revive_interval_ms / 1000.0 *
                           0.05;

    double stage_sec =
        waves * task_sec * (1.0 + cpu_overhead_frac) + tail_sec + sched_sec;

    // Cache reuse across iterations.
    int iters = std::max(1, spec.iterations);
    double stage_total_sec = stage_sec;
    double hit_frac = 0.0;
    if (iters > 1) {
      if (spec.cached) {
        any_cached = true;
        double cache_mb = run.output_mb * (conf.rdd_compress ? codec.ratio : 1.0);
        cache_demand_mb += cache_mb;
        double storage_avail_mb = storage_region_mb * executors;
        hit_frac = cache_demand_mb > 0.0
                       ? std::clamp(storage_avail_mb / cache_demand_mb, 0.0, 1.0)
                       : 1.0;
        if (conf.rdd_compress) {
          // Materialization pays one compression pass.
          stage_total_sec +=
              run.output_mb / codec.compress_mbps / core_speed / slots;
        }
        double iter_cost = stage_sec * (hit_frac * 0.35 + (1.0 - hit_frac));
        stage_total_sec += iter_cost * (iters - 1);
      } else {
        stage_total_sec = stage_sec * iters;
      }
    }

    // Noise.
    if (options_.noise_sigma > 0.0) {
      stage_total_sec *= rng.LogNormal(
          -0.5 * options_.noise_sigma * options_.noise_sigma,
          options_.noise_sigma);
    }

    // A failing stage does not run to completion: the job dies partway
    // through (YARN kills the app after repeated task failures).
    if (failure != SimFailureKind::kNone) stage_total_sec *= 0.5;

    run.finish_time_sec = std::max(parents_finish, elapsed) + stage_total_sec;

    // ---- Event log ----
    StageLog log;
    log.name = spec.name;
    log.op = spec.op;
    log.num_tasks = tasks;
    log.iterations = iters;
    log.duration_sec = stage_total_sec;
    log.input_mb = run.input_mb;
    log.output_mb = run.output_mb;
    log.shuffle_read_mb = IsShuffleOp(spec.op) ? shuffle_read_total_mb : 0.0;
    log.shuffle_write_mb = run.shuffle_write_mb;
    log.spill_mb = spill_mb_task * tasks;
    log.cached = spec.cached;

    // Sampled per-task distributions (for meta-features).
    int sample_n = std::min(tasks, options_.max_sampled_tasks);
    std::vector<double> durs, gcs, srs, sws, spills, cpufracs, iofracs, inputs;
    durs.reserve(sample_n);
    double gc_sec = cpu_sec * (gc_factor - 1.0) / std::max(gc_factor, 1e-9);
    for (int t = 0; t < sample_n; ++t) {
      double mult =
          spec.skew > 0.0
              ? rng.LogNormal(-0.5 * spec.skew * spec.skew, spec.skew)
              : 1.0;
      durs.push_back(task_sec * mult);
      gcs.push_back(gc_sec * mult);
      srs.push_back(IsShuffleOp(spec.op)
                        ? shuffle_read_total_mb / partitions * mult
                        : 0.0);
      sws.push_back(run.shuffle_write_mb / partitions * mult);
      spills.push_back(spill_mb_task * mult);
      double total = cpu_sec + io_sec;
      cpufracs.push_back(total > 0 ? cpu_sec / total : 0.0);
      iofracs.push_back(total > 0 ? io_sec / total : 0.0);
      inputs.push_back(mb_per_task * mult);
    }
    log.task_duration_sec = Summarize(durs);
    log.task_gc_sec = Summarize(gcs);
    log.task_shuffle_read_mb = Summarize(srs);
    log.task_shuffle_write_mb = Summarize(sws);
    log.task_spill_mb = Summarize(spills);
    log.task_cpu_fraction = Summarize(cpufracs);
    log.task_io_fraction = Summarize(iofracs);
    log.task_input_mb = Summarize(inputs);
    result.event_log.stages.push_back(std::move(log));

    elapsed = run.finish_time_sec;
  }

  if (failure != SimFailureKind::kNone) {
    result.failed = true;
    result.failure = failure;
    // The job burned through retries before dying.
    elapsed = std::max(elapsed, 30.0) * options_.failure_overrun;
  }

  result.runtime_sec = elapsed;
  double exec_cores = static_cast<double>(executors) * conf.executor_cores;
  double exec_mem_gb = static_cast<double>(executors) * conf.container_mem_gb();
  result.cpu_core_hours =
      (exec_cores + conf.driver_cores) * result.runtime_sec / 3600.0;
  result.memory_gb_hours =
      (exec_mem_gb + conf.driver_memory_gb) * result.runtime_sec / 3600.0;
  return result;
}

}  // namespace sparktune
