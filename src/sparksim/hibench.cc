#include "sparksim/hibench.h"

namespace sparktune {

namespace {

StageSpec Source(const std::string& name, double frac = 1.0,
                 double cpu = 0.004) {
  StageSpec s;
  s.name = name;
  s.op = StageOp::kSource;
  s.input_frac = frac;
  s.output_ratio = 1.0;
  s.cpu_cost_per_mb = cpu;
  s.mem_per_task_factor = 1.2;
  s.skew = 0.15;
  return s;
}

StageSpec Stage(const std::string& name, StageOp op, std::vector<int> deps) {
  StageSpec s;
  s.name = name;
  s.op = op;
  s.deps = std::move(deps);
  return s;
}

WorkloadSpec WordCount() {
  WorkloadSpec w;
  w.name = "WordCount";
  w.family = "micro";
  w.input_gb = 300.0;
  w.stages.push_back(Source("read"));
  StageSpec split = Stage("split-map", StageOp::kMap, {0});
  split.output_ratio = 1.2;
  split.shuffle_write_ratio = 0.22;
  split.cpu_cost_per_mb = 0.016;
  split.mem_per_task_factor = 1.6;
  split.skew = 0.25;
  w.stages.push_back(split);
  StageSpec reduce = Stage("count-reduce", StageOp::kReduceByKey, {1});
  reduce.output_ratio = 0.04;
  reduce.cpu_cost_per_mb = 0.012;
  reduce.mem_per_task_factor = 2.4;
  reduce.skew = 0.3;
  w.stages.push_back(reduce);
  StageSpec sink = Stage("save", StageOp::kSink, {2});
  sink.output_ratio = 1.0;
  sink.cpu_cost_per_mb = 0.002;
  w.stages.push_back(sink);
  return w;
}

WorkloadSpec Sort() {
  WorkloadSpec w;
  w.name = "Sort";
  w.family = "micro";
  w.input_gb = 250.0;
  w.stages.push_back(Source("read"));
  StageSpec map = Stage("key-map", StageOp::kMap, {0});
  map.output_ratio = 1.0;
  map.shuffle_write_ratio = 1.0;
  map.cpu_cost_per_mb = 0.005;
  map.mem_per_task_factor = 1.4;
  w.stages.push_back(map);
  StageSpec sort = Stage("sort", StageOp::kSortByKey, {1});
  sort.output_ratio = 1.0;
  sort.cpu_cost_per_mb = 0.009;
  sort.mem_per_task_factor = 2.6;
  sort.skew = 0.3;
  w.stages.push_back(sort);
  StageSpec sink = Stage("save", StageOp::kSink, {2});
  sink.cpu_cost_per_mb = 0.002;
  w.stages.push_back(sink);
  return w;
}

WorkloadSpec TeraSort() {
  WorkloadSpec w = Sort();
  w.name = "TeraSort";
  w.input_gb = 500.0;
  w.stages[1].cpu_cost_per_mb = 0.004;
  w.stages[2].mem_per_task_factor = 3.0;
  w.stages[2].skew = 0.38;
  w.stages[2].cpu_cost_per_mb = 0.011;
  return w;
}

WorkloadSpec Repartition() {
  WorkloadSpec w;
  w.name = "Repartition";
  w.family = "micro";
  w.input_gb = 200.0;
  w.stages.push_back(Source("read"));
  StageSpec map = Stage("shuffle-map", StageOp::kMap, {0});
  map.shuffle_write_ratio = 1.0;
  map.cpu_cost_per_mb = 0.003;
  w.stages.push_back(map);
  StageSpec re = Stage("repartition", StageOp::kGroupByKey, {1});
  re.output_ratio = 1.0;
  re.cpu_cost_per_mb = 0.003;
  re.mem_per_task_factor = 1.8;
  w.stages.push_back(re);
  StageSpec sink = Stage("save", StageOp::kSink, {2});
  sink.cpu_cost_per_mb = 0.002;
  w.stages.push_back(sink);
  return w;
}

// Iterative ML template: parse+cache training data, then iterate an
// update stage with a small aggregation shuffle per iteration.
WorkloadSpec IterativeMl(const std::string& name, double input_gb, int iters,
                         double update_cpu, double mem_factor,
                         double shuffle_ratio) {
  WorkloadSpec w;
  w.name = name;
  w.family = "ml";
  w.input_gb = input_gb;
  w.stages.push_back(Source("read", 1.0, 0.006));
  StageSpec parse = Stage("parse-cache", StageOp::kMap, {0});
  parse.output_ratio = 0.9;
  parse.cpu_cost_per_mb = 0.02;
  parse.mem_per_task_factor = 1.8;
  parse.cached = true;
  w.stages.push_back(parse);
  StageSpec update = Stage("iterate", StageOp::kIterUpdate, {1});
  update.output_ratio = 0.9;
  update.shuffle_write_ratio = shuffle_ratio;
  update.cpu_cost_per_mb = update_cpu;
  update.mem_per_task_factor = mem_factor;
  update.cached = true;
  update.iterations = iters;
  update.skew = 0.2;
  w.stages.push_back(update);
  StageSpec collect = Stage("model-collect", StageOp::kCollect, {2});
  collect.output_ratio = 0.0005;
  collect.cpu_cost_per_mb = 0.002;
  w.stages.push_back(collect);
  return w;
}

WorkloadSpec KMeans() { return IterativeMl("KMeans", 200.0, 8, 0.030, 1.9, 0.02); }
WorkloadSpec LR() { return IterativeMl("LR", 150.0, 10, 0.036, 1.7, 0.015); }
WorkloadSpec SVM() { return IterativeMl("SVM", 150.0, 12, 0.042, 1.8, 0.015); }
WorkloadSpec ALS() { return IterativeMl("ALS", 120.0, 6, 0.034, 2.6, 0.30); }
WorkloadSpec SVD() { return IterativeMl("SVD", 100.0, 5, 0.040, 3.0, 0.10); }

WorkloadSpec PCA() {
  WorkloadSpec w;
  w.name = "PCA";
  w.family = "ml";
  w.input_gb = 80.0;
  w.stages.push_back(Source("read", 1.0, 0.006));
  StageSpec map = Stage("feature-map", StageOp::kMap, {0});
  map.output_ratio = 1.0;
  map.cpu_cost_per_mb = 0.022;
  w.stages.push_back(map);
  StageSpec gram = Stage("gram-aggregate", StageOp::kAggregate, {1});
  gram.output_ratio = 0.01;
  gram.shuffle_write_ratio = 0.15;
  gram.cpu_cost_per_mb = 0.05;
  gram.mem_per_task_factor = 4.2;
  w.stages.push_back(gram);
  StageSpec collect = Stage("collect", StageOp::kCollect, {2});
  collect.output_ratio = 0.5;
  w.stages.push_back(collect);
  return w;
}

WorkloadSpec Bayes() {
  WorkloadSpec w;
  w.name = "Bayes";
  w.family = "ml";
  w.input_gb = 180.0;
  w.stages.push_back(Source("read", 1.0, 0.005));
  StageSpec tokenize = Stage("tokenize", StageOp::kMap, {0});
  tokenize.output_ratio = 1.5;
  tokenize.shuffle_write_ratio = 0.55;
  tokenize.cpu_cost_per_mb = 0.028;
  tokenize.mem_per_task_factor = 2.0;
  tokenize.skew = 0.35;
  w.stages.push_back(tokenize);
  StageSpec agg = Stage("term-aggregate", StageOp::kGroupByKey, {1});
  agg.output_ratio = 0.12;
  agg.cpu_cost_per_mb = 0.018;
  agg.mem_per_task_factor = 3.8;  // memory-pressure prone
  agg.skew = 0.45;
  w.stages.push_back(agg);
  StageSpec model = Stage("model-map", StageOp::kMap, {2});
  model.output_ratio = 0.3;
  model.cpu_cost_per_mb = 0.012;
  w.stages.push_back(model);
  StageSpec collect = Stage("collect", StageOp::kCollect, {3});
  collect.output_ratio = 0.05;
  w.stages.push_back(collect);
  return w;
}

WorkloadSpec PageRank() {
  WorkloadSpec w;
  w.name = "PageRank";
  w.family = "websearch";
  w.input_gb = 150.0;
  w.stages.push_back(Source("read-edges", 1.0, 0.005));
  StageSpec links = Stage("build-links", StageOp::kMap, {0});
  links.output_ratio = 1.2;
  links.cpu_cost_per_mb = 0.015;
  links.cached = true;
  w.stages.push_back(links);
  StageSpec rank = Stage("rank-iterate", StageOp::kIterUpdate, {1});
  rank.output_ratio = 1.0;
  rank.shuffle_write_ratio = 0.8;  // contributions shuffle per iteration
  rank.cpu_cost_per_mb = 0.02;
  rank.mem_per_task_factor = 2.4;
  rank.cached = true;
  rank.iterations = 7;
  rank.skew = 0.5;  // power-law degree distribution
  w.stages.push_back(rank);
  StageSpec sink = Stage("save-ranks", StageOp::kSink, {2});
  sink.output_ratio = 0.2;
  w.stages.push_back(sink);
  return w;
}

WorkloadSpec NWeight() {
  WorkloadSpec w;
  w.name = "NWeight";
  w.family = "graph";
  w.input_gb = 90.0;
  w.stages.push_back(Source("read-graph", 1.0, 0.005));
  StageSpec prep = Stage("prepare", StageOp::kMap, {0});
  prep.output_ratio = 1.1;
  prep.cpu_cost_per_mb = 0.018;
  prep.cached = true;
  w.stages.push_back(prep);
  StageSpec expand = Stage("expand-hops", StageOp::kIterUpdate, {1});
  expand.output_ratio = 1.6;  // neighborhood expansion grows data
  expand.shuffle_write_ratio = 1.2;
  expand.cpu_cost_per_mb = 0.026;
  expand.mem_per_task_factor = 3.2;
  expand.cached = true;
  expand.iterations = 3;
  expand.skew = 0.45;
  w.stages.push_back(expand);
  StageSpec sink = Stage("save", StageOp::kSink, {2});
  sink.output_ratio = 0.5;
  w.stages.push_back(sink);
  return w;
}

WorkloadSpec ScanSql() {
  WorkloadSpec w;
  w.name = "Scan";
  w.family = "sql";
  w.is_sql = true;
  w.input_gb = 400.0;
  w.stages.push_back(Source("table-scan", 1.0, 0.006));
  StageSpec filter = Stage("filter-project", StageOp::kMap, {0});
  filter.output_ratio = 0.3;
  filter.cpu_cost_per_mb = 0.008;
  w.stages.push_back(filter);
  StageSpec sink = Stage("insert", StageOp::kSink, {2 - 1});
  sink.cpu_cost_per_mb = 0.002;
  w.stages.push_back(sink);
  return w;
}

WorkloadSpec JoinSql() {
  WorkloadSpec w;
  w.name = "Join";
  w.family = "sql";
  w.is_sql = true;
  w.input_gb = 300.0;
  w.stages.push_back(Source("scan-uservisits", 0.85, 0.006));
  w.stages.push_back(Source("scan-rankings", 0.15, 0.006));
  StageSpec map0 = Stage("map-left", StageOp::kMap, {0});
  map0.shuffle_write_ratio = 0.8;
  map0.cpu_cost_per_mb = 0.007;
  w.stages.push_back(map0);
  StageSpec map1 = Stage("map-right", StageOp::kMap, {1});
  map1.shuffle_write_ratio = 0.9;
  map1.cpu_cost_per_mb = 0.007;
  w.stages.push_back(map1);
  StageSpec join = Stage("sort-merge-join", StageOp::kJoin, {2, 3});
  join.output_ratio = 0.5;
  join.cpu_cost_per_mb = 0.016;
  join.mem_per_task_factor = 3.2;
  join.skew = 0.4;
  w.stages.push_back(join);
  StageSpec agg = Stage("aggregate", StageOp::kAggregate, {4});
  agg.output_ratio = 0.02;
  agg.shuffle_write_ratio = 0.05;
  agg.cpu_cost_per_mb = 0.01;
  agg.mem_per_task_factor = 2.2;
  w.stages.push_back(agg);
  StageSpec sink = Stage("insert", StageOp::kSink, {5});
  w.stages.push_back(sink);
  return w;
}

WorkloadSpec AggregationSql() {
  WorkloadSpec w;
  w.name = "Aggregation";
  w.family = "sql";
  w.is_sql = true;
  w.input_gb = 350.0;
  w.stages.push_back(Source("table-scan", 1.0, 0.006));
  StageSpec map = Stage("partial-agg", StageOp::kMap, {0});
  map.output_ratio = 0.5;
  map.shuffle_write_ratio = 0.45;
  map.cpu_cost_per_mb = 0.012;
  map.mem_per_task_factor = 2.4;
  w.stages.push_back(map);
  StageSpec agg = Stage("final-agg", StageOp::kAggregate, {1});
  agg.output_ratio = 0.05;
  agg.cpu_cost_per_mb = 0.014;
  agg.mem_per_task_factor = 3.0;
  agg.skew = 0.35;
  w.stages.push_back(agg);
  StageSpec sink = Stage("insert", StageOp::kSink, {2});
  w.stages.push_back(sink);
  return w;
}

}  // namespace

std::vector<WorkloadSpec> AllHiBenchTasks() {
  return {WordCount(), Sort(),   TeraSort(),  Repartition(), KMeans(),
          Bayes(),     LR(),     SVM(),       ALS(),         SVD(),
          PCA(),       ScanSql(), JoinSql(),  AggregationSql(), PageRank(),
          NWeight()};
}

std::vector<WorkloadSpec> HeadlineHiBenchTasks() {
  return {Bayes(), KMeans(), NWeight(), WordCount(), PageRank(), TeraSort()};
}

Result<WorkloadSpec> HiBenchTask(const std::string& name) {
  for (auto& w : AllHiBenchTasks()) {
    if (w.name == name) return w;
  }
  return Status::NotFound("unknown HiBench task: " + name);
}

}  // namespace sparktune
