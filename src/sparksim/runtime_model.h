// SparkSimulator: the execution substrate. Given a workload DAG, a decoded
// SparkConf and a data size, it produces runtime, resource usage and an
// event log, with the failure modes online tuning must avoid (executor OOM,
// container kill, driver OOM, no executors granted).
//
// The model is stage/wave-level, not packet-level: per stage it computes
// task counts, per-task time from CPU / disk / network / shuffle /
// serialization / compression components, a unified-memory spill model, GC
// pressure, straggler tails with optional speculation, and scheduling
// overheads. Parameter effects are deliberately interaction-heavy (e.g.
// executor memory x cores x memory.fraction determine spills) to reproduce
// the non-convex tuning landscapes the paper targets.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "sparksim/cluster.h"
#include "sparksim/event_log.h"
#include "sparksim/spark_conf.h"
#include "sparksim/workload.h"

namespace sparktune {

enum class SimFailureKind {
  kNone = 0,
  kNoExecutors,     // requested executor shape does not fit the cluster
  kExecutorOom,     // task working set blows past executor heap
  kContainerKill,   // off-heap usage exceeds memoryOverhead (YARN kill)
  kDriverOom,       // collect result exceeds driver memory
  kFetchTimeout,    // shuffle fetch exceeded spark.network.timeout
};

const char* SimFailureKindName(SimFailureKind kind);

struct ExecutionResult {
  double runtime_sec = 0.0;
  bool failed = false;
  SimFailureKind failure = SimFailureKind::kNone;

  // Allocation-based usage over the run (what the platform bills).
  double cpu_core_hours = 0.0;
  double memory_gb_hours = 0.0;
  // Instantaneous resource rate R(x) (paper Eq. 1 / §4.3).
  double resource_rate = 0.0;

  int granted_executors = 0;
  double data_size_gb = 0.0;
  EventLog event_log;
};

struct SimOptions {
  // Multiplicative lognormal noise sigma applied per stage (0 disables).
  double noise_sigma = 0.04;
  // Memory weight c in R(x) = instances*(cores + c*mem).
  double mem_weight = 0.5;
  // Failed runs report this multiple of the elapsed time at failure
  // (retries + late kill).
  double failure_overrun = 2.0;
  // Cap on simulated per-stage sampled tasks (statistics are exact in
  // expectation; the cap bounds simulation cost).
  int max_sampled_tasks = 96;
};

class SparkSimulator {
 public:
  explicit SparkSimulator(ClusterSpec cluster, SimOptions options = {});

  const ClusterSpec& cluster() const { return cluster_; }
  const SimOptions& options() const { return options_; }

  // Execute `workload` with `conf` on `data_size_gb` of input. The seed
  // fully determines the run (noise, skew draws, failure draws).
  ExecutionResult Execute(const WorkloadSpec& workload, const SparkConf& conf,
                          double data_size_gb, uint64_t seed) const;

 private:
  ClusterSpec cluster_;
  SimOptions options_;
};

}  // namespace sparktune
