#include "sparksim/event_log_json.h"

#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/strings.h"

namespace sparktune {

namespace {

Json SummaryToJson(const TaskMetricSummary& s) {
  Json j = Json::Object();
  j.Set("mean", Json::Number(s.mean));
  j.Set("stddev", Json::Number(s.stddev));
  j.Set("min", Json::Number(s.min));
  j.Set("max", Json::Number(s.max));
  j.Set("p50", Json::Number(s.p50));
  j.Set("p90", Json::Number(s.p90));
  j.Set("skewness", Json::Number(s.skewness));
  j.Set("total", Json::Number(s.total));
  return j;
}

TaskMetricSummary SummaryFromJson(const Json* j) {
  TaskMetricSummary s;
  if (j == nullptr || !j->is_object()) return s;
  s.mean = j->GetNumberOr("mean", 0.0);
  s.stddev = j->GetNumberOr("stddev", 0.0);
  s.min = j->GetNumberOr("min", 0.0);
  s.max = j->GetNumberOr("max", 0.0);
  s.p50 = j->GetNumberOr("p50", 0.0);
  s.p90 = j->GetNumberOr("p90", 0.0);
  s.skewness = j->GetNumberOr("skewness", 0.0);
  s.total = j->GetNumberOr("total", 0.0);
  return s;
}

// StageOp <-> string (stable wire names).
Result<StageOp> StageOpFromName(const std::string& name) {
  static const StageOp kAll[] = {
      StageOp::kSource,  StageOp::kMap,        StageOp::kReduceByKey,
      StageOp::kGroupByKey, StageOp::kSortByKey, StageOp::kJoin,
      StageOp::kBroadcastJoin, StageOp::kAggregate, StageOp::kSample,
      StageOp::kIterUpdate, StageOp::kCollect, StageOp::kSink};
  for (StageOp op : kAll) {
    if (name == StageOpName(op)) return op;
  }
  return Status::InvalidArgument("unknown stage op: " + name);
}

}  // namespace

std::string EventLogToJsonLines(const EventLog& log) {
  std::string out;
  {
    Json header = Json::Object();
    header.Set("Event", Json::Str("ApplicationStart"));
    header.Set("App Name", Json::Str(log.app_name));
    header.Set("Is SQL", Json::Bool(log.is_sql));
    header.Set("Data Size GB", Json::Number(log.data_size_gb));
    out += header.Dump();
    out += "\n";
  }
  for (const auto& s : log.stages) {
    Json j = Json::Object();
    j.Set("Event", Json::Str("StageCompleted"));
    j.Set("Stage Name", Json::Str(s.name));
    j.Set("Op", Json::Str(StageOpName(s.op)));
    j.Set("Number of Tasks", Json::Number(s.num_tasks));
    j.Set("Iterations", Json::Number(s.iterations));
    j.Set("Duration", Json::Number(s.duration_sec));
    j.Set("Input MB", Json::Number(s.input_mb));
    j.Set("Output MB", Json::Number(s.output_mb));
    j.Set("Shuffle Read MB", Json::Number(s.shuffle_read_mb));
    j.Set("Shuffle Write MB", Json::Number(s.shuffle_write_mb));
    j.Set("Spill MB", Json::Number(s.spill_mb));
    j.Set("Cached", Json::Bool(s.cached));
    Json metrics = Json::Object();
    metrics.Set("Duration", SummaryToJson(s.task_duration_sec));
    metrics.Set("GC Time", SummaryToJson(s.task_gc_sec));
    metrics.Set("Shuffle Read", SummaryToJson(s.task_shuffle_read_mb));
    metrics.Set("Shuffle Write", SummaryToJson(s.task_shuffle_write_mb));
    metrics.Set("Spill", SummaryToJson(s.task_spill_mb));
    metrics.Set("CPU Fraction", SummaryToJson(s.task_cpu_fraction));
    metrics.Set("IO Fraction", SummaryToJson(s.task_io_fraction));
    metrics.Set("Input", SummaryToJson(s.task_input_mb));
    j.Set("Task Metrics", std::move(metrics));
    out += j.Dump();
    out += "\n";
  }
  return out;
}

Result<EventLog> EventLogFromJsonLines(const std::string& text) {
  EventLog log;
  bool have_header = false;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (StrTrim(line).empty()) continue;
    SPARKTUNE_ASSIGN_OR_RETURN(j, Json::Parse(line));
    if (!j.is_object()) {
      return Status::InvalidArgument(
          StrFormat("line %d is not a JSON object", lineno));
    }
    std::string event = j.GetStringOr("Event", "");
    if (event == "ApplicationStart") {
      log.app_name = j.GetStringOr("App Name", "");
      log.is_sql = j.GetBoolOr("Is SQL", false);
      log.data_size_gb = j.GetNumberOr("Data Size GB", 0.0);
      have_header = true;
    } else if (event == "StageCompleted") {
      StageLog s;
      s.name = j.GetStringOr("Stage Name", "");
      SPARKTUNE_ASSIGN_OR_RETURN(op,
                                 StageOpFromName(j.GetStringOr("Op", "")));
      s.op = op;
      s.num_tasks = static_cast<int>(j.GetNumberOr("Number of Tasks", 0));
      s.iterations = static_cast<int>(j.GetNumberOr("Iterations", 1));
      s.duration_sec = j.GetNumberOr("Duration", 0.0);
      s.input_mb = j.GetNumberOr("Input MB", 0.0);
      s.output_mb = j.GetNumberOr("Output MB", 0.0);
      s.shuffle_read_mb = j.GetNumberOr("Shuffle Read MB", 0.0);
      s.shuffle_write_mb = j.GetNumberOr("Shuffle Write MB", 0.0);
      s.spill_mb = j.GetNumberOr("Spill MB", 0.0);
      s.cached = j.GetBoolOr("Cached", false);
      const Json* metrics = j.Get("Task Metrics");
      if (metrics != nullptr && metrics->is_object()) {
        s.task_duration_sec = SummaryFromJson(metrics->Get("Duration"));
        s.task_gc_sec = SummaryFromJson(metrics->Get("GC Time"));
        s.task_shuffle_read_mb =
            SummaryFromJson(metrics->Get("Shuffle Read"));
        s.task_shuffle_write_mb =
            SummaryFromJson(metrics->Get("Shuffle Write"));
        s.task_spill_mb = SummaryFromJson(metrics->Get("Spill"));
        s.task_cpu_fraction = SummaryFromJson(metrics->Get("CPU Fraction"));
        s.task_io_fraction = SummaryFromJson(metrics->Get("IO Fraction"));
        s.task_input_mb = SummaryFromJson(metrics->Get("Input"));
      }
      log.stages.push_back(std::move(s));
    }
    // Unknown events skipped (forward compatibility with real Spark logs).
  }
  if (!have_header) {
    return Status::InvalidArgument("event log has no ApplicationStart line");
  }
  return log;
}

Status WriteEventLogFile(const EventLog& log, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return Status::Unavailable("cannot write " + path);
  out << EventLogToJsonLines(log);
  return Status::OK();
}

Result<EventLog> ReadEventLogFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::NotFound("no event log at " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return EventLogFromJsonLines(buf.str());
}

}  // namespace sparktune
