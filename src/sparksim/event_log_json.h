// SparkEventLog-style JSON serialization of simulated event logs.
//
// Spark writes one JSON object per line to its event log
// (SparkListenerApplicationStart, SparkListenerStageCompleted, ...). The
// exporter emits a compatible-in-spirit subset — application metadata, one
// stage-completed record per stage with task metric distributions — and the
// parser reads it back, so the meta-feature pipeline (§5.1) can run on
// persisted logs rather than in-memory structs, mirroring the paper's
// "extract meta-features from SparkEventLog" workflow.
#pragma once

#include <string>

#include "common/result.h"
#include "sparksim/event_log.h"

namespace sparktune {

// One JSON object per line: a header line ("Event":"ApplicationStart")
// followed by one "StageCompleted" line per stage.
std::string EventLogToJsonLines(const EventLog& log);

// Inverse of EventLogToJsonLines. Unknown events are skipped; a missing
// header or malformed line yields an error.
Result<EventLog> EventLogFromJsonLines(const std::string& text);

// Convenience file I/O.
Status WriteEventLogFile(const EventLog& log, const std::string& path);
Result<EventLog> ReadEventLogFile(const std::string& path);

}  // namespace sparktune
