#include "sparksim/production.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"
#include "common/strings.h"
#include "sparksim/spark_conf.h"

namespace sparktune {

namespace {

// Random ETL-style DAG: source -> map chain -> shuffle stage(s) -> sink.
WorkloadSpec RandomEtlWorkload(const std::string& name, Rng* rng) {
  WorkloadSpec w;
  w.name = name;
  w.family = "etl";
  w.input_gb = rng->LogNormal(std::log(120.0), 0.9);  // ~20..800 GB
  StageSpec src;
  src.name = "read";
  src.op = StageOp::kSource;
  src.input_frac = 1.0;
  src.cpu_cost_per_mb = rng->Uniform(0.003, 0.008);
  w.stages.push_back(src);
  int prev = 0;
  int maps = static_cast<int>(rng->UniformInt(1, 3));
  for (int i = 0; i < maps; ++i) {
    StageSpec m;
    m.name = StrFormat("transform-%d", i);
    m.op = StageOp::kMap;
    m.deps = {prev};
    m.output_ratio = rng->Uniform(0.5, 1.4);
    m.cpu_cost_per_mb = rng->Uniform(0.006, 0.035);
    m.mem_per_task_factor = rng->Uniform(1.2, 2.2);
    m.skew = rng->Uniform(0.15, 0.4);
    if (i + 1 == maps) m.shuffle_write_ratio = rng->Uniform(0.2, 1.0);
    prev = static_cast<int>(w.stages.size());
    w.stages.push_back(m);
  }
  int shuffles = static_cast<int>(rng->UniformInt(1, 2));
  for (int i = 0; i < shuffles; ++i) {
    StageSpec s;
    s.name = StrFormat("shuffle-%d", i);
    StageOp ops[] = {StageOp::kReduceByKey, StageOp::kGroupByKey,
                     StageOp::kAggregate, StageOp::kSortByKey};
    s.op = ops[rng->UniformInt(0, 3)];
    s.deps = {prev};
    s.output_ratio = rng->Uniform(0.05, 0.7);
    s.cpu_cost_per_mb = rng->Uniform(0.008, 0.03);
    s.mem_per_task_factor = rng->Uniform(1.8, 4.0);
    s.skew = rng->Uniform(0.2, 0.5);
    if (i + 1 < shuffles) s.shuffle_write_ratio = rng->Uniform(0.1, 0.5);
    prev = static_cast<int>(w.stages.size());
    w.stages.push_back(s);
  }
  StageSpec sink;
  sink.name = "save";
  sink.op = StageOp::kSink;
  sink.deps = {prev};
  sink.output_ratio = 1.0;
  sink.cpu_cost_per_mb = 0.002;
  w.stages.push_back(sink);
  return w;
}

// Random hourly SQL job: scan -> filter -> optional join -> aggregate ->
// insert. Small inputs.
WorkloadSpec RandomSqlWorkload(const std::string& name, Rng* rng) {
  WorkloadSpec w;
  w.name = name;
  w.family = "sql";
  w.is_sql = true;
  w.input_gb = rng->LogNormal(std::log(8.0), 1.1);  // ~1..80 GB
  StageSpec src;
  src.name = "scan";
  src.op = StageOp::kSource;
  src.input_frac = 1.0;
  src.cpu_cost_per_mb = rng->Uniform(0.004, 0.009);
  w.stages.push_back(src);
  StageSpec filter;
  filter.name = "filter-project";
  filter.op = StageOp::kMap;
  filter.deps = {0};
  filter.output_ratio = rng->Uniform(0.1, 0.7);
  filter.cpu_cost_per_mb = rng->Uniform(0.005, 0.02);
  filter.shuffle_write_ratio = rng->Uniform(0.2, 0.8);
  w.stages.push_back(filter);
  int prev = 1;
  if (rng->Bernoulli(0.4)) {
    StageSpec join;
    join.name = "join";
    join.op = StageOp::kJoin;
    join.deps = {prev};
    join.output_ratio = rng->Uniform(0.3, 0.9);
    join.cpu_cost_per_mb = rng->Uniform(0.01, 0.025);
    join.mem_per_task_factor = rng->Uniform(2.0, 3.6);
    join.shuffle_write_ratio = rng->Uniform(0.1, 0.4);
    join.skew = rng->Uniform(0.25, 0.5);
    prev = static_cast<int>(w.stages.size());
    w.stages.push_back(join);
  }
  StageSpec agg;
  agg.name = "aggregate";
  agg.op = StageOp::kAggregate;
  agg.deps = {prev};
  agg.output_ratio = rng->Uniform(0.01, 0.2);
  agg.cpu_cost_per_mb = rng->Uniform(0.008, 0.02);
  agg.mem_per_task_factor = rng->Uniform(1.8, 3.2);
  agg.skew = rng->Uniform(0.2, 0.45);
  prev = static_cast<int>(w.stages.size());
  w.stages.push_back(agg);
  StageSpec sink;
  sink.name = "insert";
  sink.op = StageOp::kSink;
  sink.deps = {prev};
  sink.cpu_cost_per_mb = 0.002;
  w.stages.push_back(sink);
  return w;
}

// Engineers over-provision: memory and instances well beyond need, default
// everything else.
Configuration ManualConfig(const ConfigSpace& space, bool is_sql, Rng* rng) {
  Configuration c = space.Default();
  namespace sp = spark_param;
  if (is_sql) {
    space.Set(&c, sp::kExecutorInstances,
              static_cast<double>(rng->UniformInt(3, 24)));
    space.Set(&c, sp::kExecutorCores, static_cast<double>(rng->UniformInt(2, 6)));
    space.Set(&c, sp::kExecutorMemory,
              static_cast<double>(rng->UniformInt(4, 20)));
  } else {
    int instances = static_cast<int>(rng->UniformInt(128, 700));
    int cores = static_cast<int>(rng->UniformInt(2, 4));
    space.Set(&c, sp::kExecutorInstances, instances);
    space.Set(&c, sp::kExecutorCores, cores);
    space.Set(&c, sp::kExecutorMemory,
              static_cast<double>(rng->UniformInt(6, 16)));
    // A classic production misconfiguration: parallelism copied from an
    // older, smaller deployment — typically well under the slot count, so
    // tasks are oversized (spills, stragglers).
    int slots = instances * cores;
    space.Set(&c, sp::kDefaultParallelism,
              static_cast<double>(rng->UniformInt(slots / 4, slots)));
  }
  space.Set(&c, sp::kExecutorMemoryOverhead,
            static_cast<double>(rng->UniformInt(384, 2048)));
  return space.Legalize(c);
}

ProductionTask MakeNamedTask(const std::string& id, WorkloadSpec workload,
                             const ClusterSpec& cluster, double period_hours,
                             int instances, int cores, int memory_gb) {
  ProductionTask t;
  t.id = id;
  t.workload = std::move(workload);
  t.cluster = cluster;
  t.period_hours = period_hours;
  t.drift = period_hours <= 1.0 ? DriftModel::Diurnal() : DriftModel::None();
  t.drift.noise_sigma = 0.06;
  ConfigSpace space = BuildSparkSpace(cluster);
  Configuration c = space.Default();
  namespace sp = spark_param;
  space.Set(&c, sp::kExecutorInstances, instances);
  space.Set(&c, sp::kExecutorCores, cores);
  space.Set(&c, sp::kExecutorMemory, memory_gb);
  // Engineers size parallelism against the slot count but routinely lag
  // behind data growth: one partition per slot, no head-room.
  space.Set(&c, sp::kDefaultParallelism,
            std::max(64, instances * cores));
  t.manual_config = space.Legalize(c);
  return t;
}

}  // namespace

std::vector<ProductionTask> GenerateProductionFleet(
    const ProductionFleetOptions& options, uint64_t seed) {
  Rng rng(seed);
  std::vector<ProductionTask> tasks;
  tasks.reserve(static_cast<size_t>(options.num_tasks));
  for (int i = 0; i < options.num_tasks; ++i) {
    Rng task_rng = rng.Fork();
    bool is_sql = task_rng.Bernoulli(options.sql_fraction);
    ProductionTask t;
    t.id = StrFormat("task-%05d", i);
    t.cluster = is_sql ? ClusterSpec::SmallSqlGroup()
                       : ClusterSpec::ProductionGroup();
    t.workload = is_sql ? RandomSqlWorkload(t.id, &task_rng)
                        : RandomEtlWorkload(t.id, &task_rng);
    t.period_hours = is_sql ? 1.0 : 24.0;
    t.drift = DriftModel::Diurnal(task_rng.Uniform(0.05, 0.35),
                                  task_rng.Uniform(0.03, 0.12));
    t.drift.phase_hours = task_rng.Uniform(0.0, 24.0);
    ConfigSpace space = BuildSparkSpace(t.cluster);
    t.manual_config = ManualConfig(space, is_sql, &task_rng);
    tasks.push_back(std::move(t));
  }
  return tasks;
}

std::vector<ProductionTask> EightAdvertisementTasks() {
  std::vector<ProductionTask> tasks;
  ClusterSpec prod = ClusterSpec::ProductionGroup();
  ClusterSpec small = ClusterSpec::SmallSqlGroup();
  Rng rng(20230701);

  // Four daily Spark jobs. Manual executor shapes from Table 2.
  {
    Rng r = rng.Fork();
    WorkloadSpec w = RandomEtlWorkload("feature-extraction", &r);
    w.input_gb = 900.0;
    w.stages[1].cpu_cost_per_mb = 0.03;
    tasks.push_back(MakeNamedTask("Spark: Feature Extraction", w, prod, 24.0,
                                  300, 2, 8));
  }
  {
    Rng r = rng.Fork();
    WorkloadSpec w = RandomEtlWorkload("user-traffic", &r);
    w.input_gb = 700.0;
    tasks.push_back(MakeNamedTask("Spark: User-Traffic Distrib.", w, prod,
                                  24.0, 256, 2, 8));
  }
  {
    Rng r = rng.Fork();
    WorkloadSpec w = RandomEtlWorkload("dau-analysis", &r);
    w.input_gb = 400.0;
    tasks.push_back(
        MakeNamedTask("Spark: DAU Analysis", w, prod, 24.0, 500, 4, 16));
  }
  {
    Rng r = rng.Fork();
    WorkloadSpec w = RandomEtlWorkload("log-processing", &r);
    w.input_gb = 1100.0;
    tasks.push_back(
        MakeNamedTask("Spark: Log Processing", w, prod, 24.0, 656, 4, 9));
  }
  // Four hourly SparkSQL jobs.
  {
    Rng r = rng.Fork();
    WorkloadSpec w = RandomSqlWorkload("data-selection", &r);
    w.input_gb = 2.0;
    tasks.push_back(
        MakeNamedTask("Spark SQL: Data Selection", w, small, 1.0, 16, 6, 6));
  }
  {
    Rng r = rng.Fork();
    WorkloadSpec w = RandomSqlWorkload("skew-detection", &r);
    w.input_gb = 12.0;
    tasks.push_back(
        MakeNamedTask("Spark SQL: Skew Detection", w, small, 1.0, 20, 2, 20));
  }
  {
    Rng r = rng.Fork();
    WorkloadSpec w = RandomSqlWorkload("feature-calculation", &r);
    w.input_gb = 25.0;
    tasks.push_back(MakeNamedTask("Spark SQL: Feature Calculation", w, small,
                                  1.0, 3, 2, 1));
  }
  {
    Rng r = rng.Fork();
    WorkloadSpec w = RandomSqlWorkload("data-preprocessing", &r);
    w.input_gb = 5.0;
    tasks.push_back(MakeNamedTask("Spark SQL: Data Preprossing", w, small,
                                  1.0, 3, 2, 6));
  }
  return tasks;
}

}  // namespace sparktune
