// The 30-parameter Spark configuration space (the Tuneful parameter set the
// paper tunes, §6.1) and its typed decoding for the simulator.
//
// Ranges scale with the cluster so the space stays meaningful on both the
// 4-node HiBench cluster and the 100-unit production resource groups
// ("the value ranges of the parameters are set differently depending on the
// cluster size", §6.1).
#pragma once

#include <string>

#include "space/config_space.h"
#include "sparksim/cluster.h"

namespace sparktune {

// Canonical Spark parameter names (indices into the space built by
// BuildSparkSpace, in this order).
namespace spark_param {
inline constexpr const char* kExecutorInstances = "spark.executor.instances";
inline constexpr const char* kExecutorCores = "spark.executor.cores";
inline constexpr const char* kExecutorMemory = "spark.executor.memory";  // GB
inline constexpr const char* kExecutorMemoryOverhead =
    "spark.executor.memoryOverhead";  // MB
inline constexpr const char* kDriverCores = "spark.driver.cores";
inline constexpr const char* kDriverMemory = "spark.driver.memory";  // GB
inline constexpr const char* kDefaultParallelism = "spark.default.parallelism";
inline constexpr const char* kSqlShufflePartitions =
    "spark.sql.shuffle.partitions";
inline constexpr const char* kMemoryFraction = "spark.memory.fraction";
inline constexpr const char* kMemoryStorageFraction =
    "spark.memory.storageFraction";
inline constexpr const char* kShuffleCompress = "spark.shuffle.compress";
inline constexpr const char* kShuffleSpillCompress =
    "spark.shuffle.spill.compress";
inline constexpr const char* kBroadcastCompress = "spark.broadcast.compress";
inline constexpr const char* kRddCompress = "spark.rdd.compress";
inline constexpr const char* kIoCompressionCodec =
    "spark.io.compression.codec";
inline constexpr const char* kSerializer = "spark.serializer";
inline constexpr const char* kKryoBufferKb = "spark.kryoserializer.buffer";
inline constexpr const char* kKryoBufferMaxMb =
    "spark.kryoserializer.buffer.max";
inline constexpr const char* kReducerMaxSizeInFlight =
    "spark.reducer.maxSizeInFlight";  // MB
inline constexpr const char* kShuffleFileBuffer =
    "spark.shuffle.file.buffer";  // KB
inline constexpr const char* kShuffleSortBypassMergeThreshold =
    "spark.shuffle.sort.bypassMergeThreshold";
inline constexpr const char* kShuffleIoNumConnectionsPerPeer =
    "spark.shuffle.io.numConnectionsPerPeer";
inline constexpr const char* kSpeculation = "spark.speculation";
inline constexpr const char* kSpeculationMultiplier =
    "spark.speculation.multiplier";
inline constexpr const char* kLocalityWait = "spark.locality.wait";  // sec
inline constexpr const char* kSchedulerReviveInterval =
    "spark.scheduler.revive.interval";  // ms
inline constexpr const char* kTaskMaxFailures = "spark.task.maxFailures";
inline constexpr const char* kBroadcastBlockSize =
    "spark.broadcast.blockSize";  // MB
inline constexpr const char* kStorageMemoryMapThreshold =
    "spark.storage.memoryMapThreshold";  // MB
inline constexpr const char* kNetworkTimeout = "spark.network.timeout";  // s
}  // namespace spark_param

inline constexpr int kNumSparkParams = 30;

// Build the 30-parameter space sized for `cluster`.
ConfigSpace BuildSparkSpace(const ClusterSpec& cluster);

// Compression codec / serializer category indices (order in the space).
enum class Codec { kLz4 = 0, kSnappy = 1, kZstd = 2 };
enum class Serializer { kJava = 0, kKryo = 1 };

// Typed view of a Configuration for the simulator.
struct SparkConf {
  int executor_instances;
  int executor_cores;
  double executor_memory_gb;
  double executor_memory_overhead_mb;
  int driver_cores;
  double driver_memory_gb;
  int default_parallelism;
  int sql_shuffle_partitions;
  double memory_fraction;
  double memory_storage_fraction;
  bool shuffle_compress;
  bool shuffle_spill_compress;
  bool broadcast_compress;
  bool rdd_compress;
  Codec io_codec;
  Serializer serializer;
  double kryo_buffer_kb;
  double kryo_buffer_max_mb;
  double reducer_max_size_in_flight_mb;
  double shuffle_file_buffer_kb;
  int shuffle_sort_bypass_merge_threshold;
  int shuffle_io_num_connections_per_peer;
  bool speculation;
  double speculation_multiplier;
  double locality_wait_sec;
  double scheduler_revive_interval_ms;
  int task_max_failures;
  double broadcast_block_size_mb;
  double storage_memory_map_threshold_mb;
  double network_timeout_sec;

  // Total memory footprint of one executor container (heap + overhead), GB.
  double container_mem_gb() const {
    return executor_memory_gb + executor_memory_overhead_mb / 1024.0;
  }
};

// Decode a configuration from `space` (must have been built by
// BuildSparkSpace) into the typed view.
SparkConf DecodeSparkConf(const ConfigSpace& space, const Configuration& c);

// Resource function R(x) (paper §3.2/§4.3): amount of resource per unit
// time, R = instances * (cores + c_mem * memory_gb) with the driver included.
// `mem_weight` is the c constant. White-box and differentiable in the
// resource parameters.
double ResourceFunction(const SparkConf& conf, double mem_weight = 0.5);

// Expert initial importance ranking for cold-start sub-space selection
// (paper §4.1: "we start with an initial parameter ranking suggested by
// experts"). Returns parameter names, most important first.
std::vector<std::string> ExpertParameterRanking();

}  // namespace sparktune
