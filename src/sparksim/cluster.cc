#include "sparksim/cluster.h"

#include <algorithm>
#include <cassert>

namespace sparktune {

ClusterSpec ClusterSpec::HiBenchCluster() {
  ClusterSpec c;
  c.name = "hibench-x86-4node";
  c.num_nodes = 4;
  c.cores_per_node = 96;  // 2x 48-core EPYC 7K62
  c.mem_per_node_gb = 512.0;
  c.core_speed = 1.0;
  c.disk_mbps = 450.0;
  c.net_mbps = 1200.0;
  return c;
}

ClusterSpec ClusterSpec::ProductionGroup() {
  ClusterSpec c;
  c.name = "tencent-resource-group";
  c.num_nodes = 100;  // 100 computing units
  c.cores_per_node = 20;  // Xeon Platinum 8255C slices
  c.mem_per_node_gb = 50.0;
  c.core_speed = 0.9;
  c.disk_mbps = 350.0;
  c.net_mbps = 1000.0;
  return c;
}

ClusterSpec ClusterSpec::SmallSqlGroup() {
  ClusterSpec c;
  c.name = "small-sql-group";
  c.num_nodes = 8;
  c.cores_per_node = 16;
  c.mem_per_node_gb = 64.0;
  c.core_speed = 0.9;
  c.disk_mbps = 350.0;
  c.net_mbps = 1000.0;
  return c;
}

Placement PlaceExecutors(const ClusterSpec& cluster, int requested,
                         int cores_per_executor, double mem_per_executor_gb) {
  assert(cores_per_executor > 0 && mem_per_executor_gb > 0.0);
  Placement p;
  int by_cores = cluster.cores_per_node / cores_per_executor;
  int by_mem = static_cast<int>(cluster.mem_per_node_gb / mem_per_executor_gb);
  int per_node = std::max(0, std::min(by_cores, by_mem));
  int capacity = per_node * cluster.num_nodes;
  p.granted_executors = std::max(0, std::min(requested, capacity));
  p.fully_granted = (p.granted_executors == requested);
  return p;
}

}  // namespace sparktune
