// HiBench-style workload presets (paper §6.1). Six headline tasks (Bayes,
// KMeans, NWeight, WordCount, PageRank, TeraSort) plus ten more used by the
// meta-learning experiments, each modeled as a stage DAG whose operator mix
// and data-flow ratios reproduce the qualitative profile of the real
// benchmark (shuffle-heavy sort, cache-sensitive iterative ML, skewed graph
// propagation, scan/join/aggregation SQL, ...).
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "sparksim/workload.h"

namespace sparktune {

// All 16 presets, stable order.
std::vector<WorkloadSpec> AllHiBenchTasks();

// The six tasks used in the paper's headline Figures 4/5/8/9.
std::vector<WorkloadSpec> HeadlineHiBenchTasks();

// Lookup by name (e.g. "TeraSort"); NotFound if unknown.
Result<WorkloadSpec> HiBenchTask(const std::string& name);

}  // namespace sparktune
