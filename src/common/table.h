// ASCII table / CSV emitters used by the experiment harnesses to print the
// paper's tables and figure series in a uniform format.
#pragma once

#include <string>
#include <vector>

namespace sparktune {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Convenience: format arbitrary cells; doubles use PrettyDouble.
  void AddRow(std::initializer_list<std::string> row);

  // Render with aligned columns and +--+ separators.
  std::string ToString() const;
  // Render as CSV (no escaping beyond quoting cells with commas).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sparktune
