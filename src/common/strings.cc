#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace sparktune {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(const std::string& s, char delim) {
  std::vector<std::string> parts;
  std::string cur;
  std::istringstream in(s);
  while (std::getline(in, cur, delim)) parts.push_back(cur);
  if (!s.empty() && s.back() == delim) parts.push_back("");
  return parts;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StrTrim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string PrettyDouble(double v, int digits) {
  std::string s = StrFormat("%.*f", digits, v);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  return s;
}

}  // namespace sparktune
