// Descriptive statistics and rank correlation utilities shared by the
// simulator (task metric summaries), the meta-learner (Kendall-tau task
// distance) and the experiment harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace sparktune {

double Mean(const std::vector<double>& v);
// Population variance/stddev (divide by n); returns 0 for n < 2.
double Variance(const std::vector<double>& v);
double Stddev(const std::vector<double>& v);
double Min(const std::vector<double>& v);
double Max(const std::vector<double>& v);
double Sum(const std::vector<double>& v);
// Linear-interpolated quantile, q in [0, 1]. v need not be sorted.
double Quantile(std::vector<double> v, double q);
double Median(const std::vector<double>& v);
// Skewness (Fisher-Pearson, population); 0 for degenerate inputs.
double Skewness(const std::vector<double>& v);

// Kendall rank correlation coefficient tau-a in [-1, 1].
// Returns 0 for vectors shorter than 2. O(n^2); n is small in our usage
// (random probe sets of a few hundred configs).
double KendallTau(const std::vector<double>& a, const std::vector<double>& b);

// Spearman rank correlation (Pearson on ranks, average ranks on ties).
double SpearmanRho(const std::vector<double>& a, const std::vector<double>& b);

// Pearson correlation; 0 when either side is constant.
double PearsonR(const std::vector<double>& a, const std::vector<double>& b);

// Ranks with ties resolved by averaging (1-based ranks).
std::vector<double> AverageRanks(const std::vector<double>& v);

// Simple fixed-width histogram over [lo, hi) with `bins` buckets; values
// outside the range are clamped into the first/last bucket.
std::vector<int> Histogram(const std::vector<double>& v, double lo, double hi,
                           int bins);

// Incremental mean/variance accumulator (Welford).
class RunningStat {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sparktune
