#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace sparktune {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53-bit mantissa in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Gamma(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 then apply the standard power correction.
    double u;
    do {
      u = Uniform();
    } while (u <= 1e-300);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 1e-300 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  assert(k <= n);
  std::vector<int> idx = Permutation(n);
  idx.resize(k);
  return idx;
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) idx[i] = i;
  for (int i = n - 1; i > 0; --i) {
    int j = static_cast<int>(UniformInt(0, i));
    std::swap(idx[i], idx[j]);
  }
  return idx;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA0761D6478BD642FULL); }

RngState Rng::SaveState() const {
  RngState s;
  for (int i = 0; i < 4; ++i) s.state[i] = state_[i];
  s.has_cached_normal = has_cached_normal_;
  s.cached_normal = cached_normal_;
  return s;
}

void Rng::RestoreState(const RngState& s) {
  for (int i = 0; i < 4; ++i) state_[i] = s.state[i];
  has_cached_normal_ = s.has_cached_normal;
  cached_normal_ = s.cached_normal;
}

}  // namespace sparktune
