// Retry policy, exponential backoff, and circuit breaker for the service
// watchdog (DESIGN.md §7).
//
// Time is counted in *simulated periods*: one ExecutePeriodic call on a task
// is one period. All clocks here are integer period counts, so the watchdog
// schedule is deterministic and independent of wall time or thread count.
#pragma once

#include "common/failure.h"

namespace sparktune {

struct RetryPolicy {
  // Max times the tuner re-runs the same pending suggestion after infra
  // failures (counting the first attempt) before abandoning it.
  int max_attempts = 3;
  // Backoff after the k-th consecutive infra failure is
  // min(base << (k-1), max) skipped periods.
  int base_backoff_periods = 1;
  int max_backoff_periods = 8;
  // Consecutive infra failures that open the circuit breaker.
  int circuit_break_failures = 4;
  // Periods a parked (circuit-open) task runs its incumbent configuration
  // before the breaker closes again.
  int park_periods = 6;

  int BackoffPeriods(int consecutive_failures) const;
};

// Per-task watchdog state. Checkpointed with the task so a restart resumes
// mid-backoff / mid-park exactly where it left off.
struct RetryState {
  int consecutive_infra = 0;   // current streak feeding the breaker
  int backoff_remaining = 0;   // periods left to skip
  bool parked = false;         // circuit breaker open
  int park_cooldown = 0;       // degraded periods left before unpark
  // Lifetime counters (diagnostics; also checkpointed).
  long long infra_failures = 0;
  long long backoff_skips = 0;
  long long park_events = 0;
  long long degraded_runs = 0;
};

// What the watchdog does with a task this period.
enum class PeriodDecision {
  kRun,          // normal tuner step
  kSkipBackoff,  // backing off: no execution at all this period
  kRunDegraded,  // parked: execute the incumbent/baseline config only
};

// Decides the current period's action and advances the backoff/park clocks.
PeriodDecision DecidePeriod(const RetryPolicy& policy, RetryState* state);

// Records the failure kind of a *normal* executed period (kRun decisions
// only): an infra failure extends the streak and schedules backoff or opens
// the breaker; anything else closes the streak.
void RecordPeriodOutcome(const RetryPolicy& policy, RetryState* state,
                         FailureKind kind);

}  // namespace sparktune
