#include "common/backoff.h"

#include <algorithm>

namespace sparktune {

int RetryPolicy::BackoffPeriods(int consecutive_failures) const {
  if (consecutive_failures <= 0) return 0;
  const long long cap = std::max(max_backoff_periods, 0);
  const long long base = std::max(base_backoff_periods, 0);
  if (base == 0 || cap == 0) return 0;
  // Clamp the exponent *before* shifting: `base << (k-1)` is undefined once
  // the shift reaches the operand width, and a long failure streak (or an
  // int-sized base) would get there. Any shift that can exceed the cap is
  // the cap; 62 keeps base << shift inside a non-negative long long.
  const int shift = consecutive_failures - 1;
  if (shift >= 62 || base > (cap >> std::min(shift, 61))) {
    return static_cast<int>(cap);
  }
  return static_cast<int>(std::min(base << shift, cap));
}

PeriodDecision DecidePeriod(const RetryPolicy& policy, RetryState* state) {
  (void)policy;
  if (state->backoff_remaining > 0) {
    --state->backoff_remaining;
    ++state->backoff_skips;
    return PeriodDecision::kSkipBackoff;
  }
  if (state->parked) {
    ++state->degraded_runs;
    if (--state->park_cooldown <= 0) {
      // Breaker closes after this degraded period; the streak restarts so
      // the next infra failure backs off from scratch.
      state->parked = false;
      state->park_cooldown = 0;
      state->consecutive_infra = 0;
    }
    return PeriodDecision::kRunDegraded;
  }
  return PeriodDecision::kRun;
}

void RecordPeriodOutcome(const RetryPolicy& policy, RetryState* state,
                         FailureKind kind) {
  if (kind != FailureKind::kInfra) {
    state->consecutive_infra = 0;
    return;
  }
  ++state->consecutive_infra;
  ++state->infra_failures;
  if (state->consecutive_infra >= policy.circuit_break_failures) {
    state->parked = true;
    state->park_cooldown = policy.park_periods;
    state->backoff_remaining = 0;
    ++state->park_events;
  } else {
    state->backoff_remaining =
        policy.BackoffPeriods(state->consecutive_infra);
  }
}

}  // namespace sparktune
