// Result<T>: value-or-Status, in the style of arrow::Result.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace sparktune {

template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call sites
  // terse: `return value;` / `return Status::InvalidArgument(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

#define SPARKTUNE_RETURN_IF_ERROR(expr)            \
  do {                                             \
    ::sparktune::Status _st = (expr);              \
    if (!_st.ok()) return _st;                     \
  } while (0)

#define SPARKTUNE_ASSIGN_OR_RETURN(lhs, expr)      \
  auto lhs##_result = (expr);                      \
  if (!lhs##_result.ok()) return lhs##_result.status(); \
  auto& lhs = *lhs##_result

}  // namespace sparktune
