// Deterministic random number generation (xoshiro256++) with the
// distributions the tuner and simulator need. All randomness in the library
// flows through Rng so experiments are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace sparktune {

// Complete serialized generator state; two Rng instances restored from the
// same RngState produce identical output streams. Used by the checkpoint
// layer so a restarted service resumes the exact suggestion trajectory.
struct RngState {
  uint64_t state[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Raw 64-bit output of xoshiro256++.
  uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform();
  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  // Standard normal via Box-Muller (cached pair).
  double Normal();
  double Normal(double mean, double stddev);
  // exp(Normal(mu, sigma)); multiplicative noise in the simulator.
  double LogNormal(double mu, double sigma);
  // Bernoulli(p).
  bool Bernoulli(double p);
  // Gamma(shape k, scale theta) via Marsaglia-Tsang; used for skewed task
  // duration tails.
  double Gamma(double shape, double scale);

  // Sample `k` distinct indices from [0, n); k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);
  // Fisher-Yates shuffle of indices [0, n).
  std::vector<int> Permutation(int n);

  // Derive an independent child stream (splitmix over the state).
  Rng Fork();

  // Snapshot / restore the full generator state (incl. the Box-Muller cache).
  RngState SaveState() const;
  void RestoreState(const RngState& s);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sparktune
