// Fixed worker pool with a blocking ParallelFor(n, fn) helper — the
// parallel substrate of the suggestion engine (GP hyper-sweep, acquisition
// scoring, forest fitting, multi-task batches).
//
// Determinism contract (see DESIGN.md "Threading model"):
//   * fn(i) must depend only on `i` and on state it owns (per-item output
//     slot, per-item forked Rng). Scheduling order is unspecified, so any
//     cross-item accumulation must happen in a serial pass afterwards.
//   * num_threads == 1 runs inline on the caller — byte-for-byte the serial
//     code path, with no pool interaction at all.
//   * Nested ParallelFor calls (from inside a worker, or from the calling
//     thread's own chunk of an outer ParallelFor) run inline, so composed
//     parallel components never deadlock and never oversubscribe.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace sparktune {

class ThreadPool {
 public:
  // A pool of `num_threads - 1` workers; the caller of ParallelFor is the
  // remaining participant. num_threads <= 1 means no workers (inline).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Worker count + 1 (the caller participates in every ParallelFor).
  int num_threads() const;

  // Runs fn(i) for every i in [0, n); blocks until all items finished.
  // At most `max_threads` threads participate when max_threads > 0; the
  // worker set grows on demand up to kMaxThreads - 1.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   int max_threads = 0);

  // Process-wide pool, created lazily at DefaultThreads() width. Never
  // destroyed (leaked on purpose: workers must outlive static teardown).
  static ThreadPool* Global();

  // SPARKTUNE_THREADS env var when set (> 0), else hardware concurrency.
  static int DefaultThreads();

  // True on a pool worker thread (nested ParallelFor then runs inline).
  static bool InWorker();

  static constexpr int kMaxThreads = 64;

 private:
  // One ParallelFor invocation: items are claimed in chunks off an atomic
  // cursor by up to `width` participants (caller included).
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    int width = 1;
    std::atomic<size_t> next{0};
    std::atomic<int> entered{0};
  };

  void WorkerLoop(uint64_t start_generation);
  void EnsureWorkers(int target_workers);
  static void RunChunks(Job* job);

  // Serializes concurrent ParallelFor callers (one job in flight).
  std::mutex caller_mu_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  // lint:allow(no-raw-thread) the pool itself — the one sanctioned owner of raw threads
  std::vector<std::thread> workers_;
  // lint:guarded-by(mu_) bumped per job; workers run each job once
  uint64_t generation_ = 0;
  Job* job_ = nullptr;  // lint:guarded-by(mu_)
  // lint:guarded-by(mu_) workers done with the current generation
  size_t workers_arrived_ = 0;
  bool stop_ = false;  // lint:guarded-by(mu_)
};

// Options-level dispatch used by every `num_threads` knob in the library:
//   1 (default) -> inline serial loop on the caller (bit-identical baseline)
//   0           -> global pool at its default width
//   k > 1       -> global pool, at most k threads
// Also runs inline for n <= 1 and inside pool workers.
void ParallelFor(int num_threads, size_t n,
                 const std::function<void(size_t)>& fn);

// Fork `n` child RNG streams from `base`, one Fork() per stream in index
// order. The forking itself is serial (so the result is independent of any
// later parallel consumption) and each stream is private to its item.
std::vector<Rng> ForkRngs(Rng* base, size_t n);

}  // namespace sparktune
