#include "common/checksum.h"

#include <array>

namespace sparktune {

namespace {

// Reflected table for polynomial 0xEDB88320 (IEEE), generated at first use.
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  const auto& table = Crc32Table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace sparktune
