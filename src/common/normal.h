// Standard normal pdf/cdf/inverse-cdf used by EI/EIC acquisition functions
// and by the simulator's order-statistic straggler model.
#pragma once

namespace sparktune {

// Standard normal probability density.
double NormPdf(double x);
// Standard normal cumulative distribution (via erfc, full precision).
double NormCdf(double x);
// Inverse standard normal CDF (Acklam's rational approximation, |eps| ~ 1e-9).
// p must be in (0, 1).
double NormInvCdf(double p);

}  // namespace sparktune
