#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace sparktune {

namespace {

// lint:allow(mutable-static) thread_local flag, each thread reads/writes only its own copy
thread_local bool tls_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  int target = std::clamp(num_threads, 1, kMaxThreads);
  EnsureWorkers(target - 1);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(workers_.size()) + 1;
}

bool ThreadPool::InWorker() { return tls_in_worker; }

int ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("SPARKTUNE_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) return std::min(v, kMaxThreads);
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : std::min(static_cast<int>(hc), kMaxThreads);
}

ThreadPool* ThreadPool::Global() {
  // Magic-static init is thread-safe; workers must outlive any static
  // destructor that might still issue a ParallelFor, hence the leak.
  // lint:allow(mutable-static) intentionally leaked immutable-after-init singleton
  static ThreadPool* pool = new ThreadPool(DefaultThreads());
  return pool;
}

void ThreadPool::EnsureWorkers(int target_workers) {
  std::lock_guard<std::mutex> lk(mu_);
  target_workers = std::min(target_workers, kMaxThreads - 1);
  while (static_cast<int>(workers_.size()) < target_workers) {
    // A worker spawned at generation g must not try to join job g; it
    // starts waiting for g+1.
    workers_.emplace_back(&ThreadPool::WorkerLoop, this, generation_);
  }
}

void ThreadPool::RunChunks(Job* job) {
  const size_t n = job->n;
  // Chunked claiming: large enough to amortize the atomic, small enough to
  // balance uneven item costs (GP refits and tree fits vary a lot).
  const size_t chunk =
      std::max<size_t>(1, n / (static_cast<size_t>(job->width) * 8));
  for (;;) {
    size_t begin = job->next.fetch_add(chunk, std::memory_order_relaxed);
    if (begin >= n) return;
    size_t end = std::min(n, begin + chunk);
    for (size_t i = begin; i < end; ++i) (*job->fn)(i);
  }
}

void ThreadPool::WorkerLoop(uint64_t start_generation) {
  tls_in_worker = true;
  uint64_t seen = start_generation;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    // Participate only while the job wants more threads; late or surplus
    // workers just report in.
    if (job != nullptr &&
        job->entered.fetch_add(1, std::memory_order_relaxed) <
            job->width - 1) {
      RunChunks(job);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++workers_arrived_;
      if (workers_arrived_ == workers_.size()) cv_done_.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             int max_threads) {
  if (n == 0) return;
  if (n == 1 || tls_in_worker) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  int width = max_threads > 0 ? std::min(max_threads, kMaxThreads)
                              : num_threads();
  width = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(width), n));
  if (width <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::lock_guard<std::mutex> caller_lk(caller_mu_);
  EnsureWorkers(width - 1);

  Job job;
  job.fn = &fn;
  job.n = n;
  job.width = width;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    workers_arrived_ = 0;
    ++generation_;
  }
  cv_work_.notify_all();
  // The caller is a participant. While it runs its chunks it counts as
  // being inside the pool, so a nested ParallelFor issued from its own
  // fn(i) runs inline instead of re-entering caller_mu_ (self-deadlock).
  tls_in_worker = true;
  RunChunks(&job);
  tls_in_worker = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return workers_arrived_ == workers_.size(); });
    job_ = nullptr;
  }
}

void ParallelFor(int num_threads, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (num_threads == 1 || n <= 1 || ThreadPool::InWorker()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  int width = num_threads <= 0 ? ThreadPool::DefaultThreads() : num_threads;
  ThreadPool::Global()->ParallelFor(n, fn, width);
}

std::vector<Rng> ForkRngs(Rng* base, size_t n) {
  std::vector<Rng> rngs;
  rngs.reserve(n);
  for (size_t i = 0; i < n; ++i) rngs.push_back(base->Fork());
  return rngs;
}

}  // namespace sparktune
