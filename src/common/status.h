// Status: lightweight error propagation in the style of RocksDB / Arrow.
//
// Library code returns Status (or Result<T>, see result.h) instead of
// throwing; exceptions are reserved for programmer errors via CHECK macros.
#pragma once

#include <string>
#include <utility>

namespace sparktune {

class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfRange,
    kFailedPrecondition,
    kInternal,
    kUnavailable,
    kDataLoss,
  };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  // Unrecoverable corruption of persisted state (torn write, bad checksum).
  static Status DataLoss(std::string msg) {
    return Status(Code::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  // Human-readable rendering, e.g. "InvalidArgument: beta must be in [0,1]".
  std::string ToString() const;

 private:
  Code code_;
  std::string msg_;
};

}  // namespace sparktune
