// Failure taxonomy for job executions (DESIGN.md §7).
//
// Configuration-induced failures (kOom, kTimeout) are the advisor's safety
// signal: they mark the suggested configuration as unsafe. Infrastructure
// failures (kInfra — evaluator crashes, transient cluster errors) say nothing
// about the configuration and must never reach the advisor's safety labels;
// the service-level watchdog retries them instead.
#pragma once

namespace sparktune {

enum class FailureKind {
  kNone = 0,     // execution completed
  kOom,          // out-of-memory; configuration-induced, unsafe label
  kTimeout,      // exceeded runtime bound / hang; configuration-induced
  kInfra,        // infrastructure fault; retried, never a safety label
};

inline const char* FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone:
      return "none";
    case FailureKind::kOom:
      return "oom";
    case FailureKind::kTimeout:
      return "timeout";
    case FailureKind::kInfra:
      return "infra";
  }
  return "unknown";
}

// Inverse of FailureKindName; unrecognized names map to kNone so legacy
// persisted records (which lacked the field) load as successful runs.
inline FailureKind FailureKindFromName(const char* name) {
  if (name == nullptr) return FailureKind::kNone;
  const auto eq = [&](const char* s) {
    const char* a = name;
    for (; *a != '\0' && *s != '\0'; ++a, ++s) {
      if (*a != *s) return false;
    }
    return *a == '\0' && *s == '\0';
  };
  if (eq("oom")) return FailureKind::kOom;
  if (eq("timeout")) return FailureKind::kTimeout;
  if (eq("infra")) return FailureKind::kInfra;
  return FailureKind::kNone;
}

// True for failures caused by the configuration itself — the only kinds the
// advisor may learn from as unsafe-config labels.
inline bool IsConfigFailure(FailureKind kind) {
  return kind == FailureKind::kOom || kind == FailureKind::kTimeout;
}

// Any failure at all (config-induced or infra).
inline bool IsFailure(FailureKind kind) { return kind != FailureKind::kNone; }

}  // namespace sparktune
