// Minimal JSON value with parser and serializer. Used by the data
// repository (src/service) to persist run histories and meta-knowledge.
// Supports the JSON subset we emit: object, array, string, double, bool,
// null. Object key order is preserved for stable round-trips.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace sparktune {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double d);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }

  // Array access.
  void Append(Json v);
  size_t size() const;
  const Json& at(size_t i) const;

  // Object access. Set overwrites; Get returns nullptr if missing.
  void Set(const std::string& key, Json v);
  const Json* Get(const std::string& key) const;
  bool Has(const std::string& key) const { return Get(key) != nullptr; }
  const std::vector<std::pair<std::string, Json>>& items() const {
    return object_;
  }
  const std::vector<Json>& elements() const { return array_; }

  // Typed getters with fallback; simplify repository reads.
  double GetNumberOr(const std::string& key, double fallback) const;
  std::string GetStringOr(const std::string& key,
                          const std::string& fallback) const;
  bool GetBoolOr(const std::string& key, bool fallback) const;

  // Compact single-line serialization.
  std::string Dump() const;

  static Result<Json> Parse(const std::string& text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace sparktune
