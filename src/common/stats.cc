#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace sparktune {

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return Sum(v) / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double Stddev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Min(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return *std::min_element(v.begin(), v.end());
}

double Max(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return *std::max_element(v.begin(), v.end());
}

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(v.begin(), v.end());
  double pos = q * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double Median(const std::vector<double>& v) { return Quantile(v, 0.5); }

double Skewness(const std::vector<double>& v) {
  if (v.size() < 3) return 0.0;
  double m = Mean(v);
  double s = Stddev(v);
  if (s <= 0.0) return 0.0;
  double acc = 0.0;
  for (double x : v) {
    double z = (x - m) / s;
    acc += z * z * z;
  }
  return acc / static_cast<double>(v.size());
}

double KendallTau(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  size_t n = a.size();
  if (n < 2) return 0.0;
  long long concordant = 0, discordant = 0;
  for (size_t i = 0; i + 1 < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double da = a[i] - a[j];
      double db = b[i] - b[j];
      double prod = da * db;
      if (prod > 0) ++concordant;
      else if (prod < 0) ++discordant;
      // ties contribute to neither (tau-a denominator keeps all pairs)
    }
  }
  double pairs = 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  return static_cast<double>(concordant - discordant) / pairs;
}

std::vector<double> AverageRanks(const std::vector<double>& v) {
  size_t n = v.size();
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](size_t i, size_t j) { return v[i] < v[j]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
    // average 1-based rank for the tie group [i, j]
    double avg = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double PearsonR(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  double ma = Mean(a), mb = Mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

double SpearmanRho(const std::vector<double>& a, const std::vector<double>& b) {
  return PearsonR(AverageRanks(a), AverageRanks(b));
}

std::vector<int> Histogram(const std::vector<double>& v, double lo, double hi,
                           int bins) {
  assert(bins > 0 && hi > lo);
  std::vector<int> counts(bins, 0);
  double width = (hi - lo) / bins;
  for (double x : v) {
    int b = static_cast<int>(std::floor((x - lo) / width));
    b = std::clamp(b, 0, bins - 1);
    ++counts[b];
  }
  return counts;
}

void RunningStat::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace sparktune
