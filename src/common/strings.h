// Small string helpers: printf-style formatting (no std::format on GCC 12),
// split/join, and numeric rendering used by the table printers.
#pragma once

#include <string>
#include <vector>

namespace sparktune {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

std::vector<std::string> StrSplit(const std::string& s, char delim);
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

// Trim ASCII whitespace on both sides.
std::string StrTrim(const std::string& s);

bool StartsWith(const std::string& s, const std::string& prefix);

// Render a double with `digits` significant decimals, trimming trailing
// zeros ("12.50" -> "12.5", "3.00" -> "3").
std::string PrettyDouble(double v, int digits = 4);

}  // namespace sparktune
