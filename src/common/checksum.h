// CRC-32 (IEEE 802.3 polynomial, reflected) for checkpoint integrity.
//
// The checkpoint layer prefixes every payload with its CRC so a torn write
// (partial rename target, truncated file, bit rot) is detected on load and
// surfaced as Status::DataLoss instead of being parsed as garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sparktune {

// CRC-32 of `data`; `seed` allows incremental computation by passing a
// previous result. Matches zlib's crc32() for seed 0.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace sparktune
