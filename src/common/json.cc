#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/strings.h"

namespace sparktune {

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double d) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = d;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

void Json::Append(Json v) { array_.push_back(std::move(v)); }

size_t Json::size() const {
  return type_ == Type::kArray ? array_.size() : object_.size();
}

const Json& Json::at(size_t i) const { return array_.at(i); }

void Json::Set(const std::string& key, Json v) {
  for (auto& kv : object_) {
    if (kv.first == key) {
      kv.second = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

const Json* Json::Get(const std::string& key) const {
  for (const auto& kv : object_) {
    if (kv.first == key) return &kv.second;
  }
  return nullptr;
}

double Json::GetNumberOr(const std::string& key, double fallback) const {
  const Json* v = Get(key);
  return (v != nullptr && v->is_number()) ? v->AsNumber() : fallback;
}

std::string Json::GetStringOr(const std::string& key,
                              const std::string& fallback) const {
  const Json* v = Get(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : fallback;
}

bool Json::GetBoolOr(const std::string& key, bool fallback) const {
  const Json* v = Get(key);
  return (v != nullptr && v->is_bool()) ? v->AsBool() : fallback;
}

namespace {

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpTo(const Json& j, std::string* out) {
  switch (j.type()) {
    case Json::Type::kNull:
      *out += "null";
      break;
    case Json::Type::kBool:
      *out += j.AsBool() ? "true" : "false";
      break;
    case Json::Type::kNumber: {
      double d = j.AsNumber();
      if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
        *out += StrFormat("%lld", static_cast<long long>(d));
      } else if (std::isfinite(d)) {
        *out += StrFormat("%.17g", d);
      } else {
        *out += "null";  // JSON has no inf/nan
      }
      break;
    }
    case Json::Type::kString:
      EscapeTo(j.AsString(), out);
      break;
    case Json::Type::kArray: {
      *out += "[";
      bool first = true;
      for (const auto& e : j.elements()) {
        if (!first) *out += ",";
        first = false;
        DumpTo(e, out);
      }
      *out += "]";
      break;
    }
    case Json::Type::kObject: {
      *out += "{";
      bool first = true;
      for (const auto& [k, v] : j.items()) {
        if (!first) *out += ",";
        first = false;
        EscapeTo(k, out);
        *out += ":";
        DumpTo(v, out);
      }
      *out += "}";
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Result<Json> Parse() {
    SkipWs();
    auto v = ParseValue();
    if (!v.ok()) return v;
    SkipWs();
    if (pos_ != s_.size()) {
      return Status::InvalidArgument(
          StrFormat("trailing characters at offset %zu", pos_));
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Err(const std::string& what) {
    return Status::InvalidArgument(
        StrFormat("%s at offset %zu", what.c_str(), pos_));
  }

  Result<Json> ParseValue() {
    if (pos_ >= s_.size()) return Err("unexpected end of input");
    char c = s_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      auto r = ParseString();
      if (!r.ok()) return r.status();
      return Json::Str(std::move(*r));
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Json::Bool(true);
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Json::Bool(false);
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Json::Null();
    }
    return ParseNumber();
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Err("invalid value");
    char* end = nullptr;
    std::string tok = s_.substr(start, pos_ - start);
    double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return Err("invalid number");
    return Json::Number(d);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Err("expected '\"'");
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) return Err("unterminated escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return Err("bad \\u escape");
            unsigned code = std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            // We only emit ASCII control escapes; decode BMP to UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Err("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Err("unterminated string");
  }

  Result<Json> ParseArray() {
    Consume('[');
    Json arr = Json::Array();
    SkipWs();
    if (Consume(']')) return arr;
    for (;;) {
      SkipWs();
      auto v = ParseValue();
      if (!v.ok()) return v;
      arr.Append(std::move(*v));
      SkipWs();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
  }

  Result<Json> ParseObject() {
    Consume('{');
    Json obj = Json::Object();
    SkipWs();
    if (Consume('}')) return obj;
    for (;;) {
      SkipWs();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      auto v = ParseValue();
      if (!v.ok()) return v;
      obj.Set(*key, std::move(*v));
      SkipWs();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

std::string Json::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace sparktune
