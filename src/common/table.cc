#include "common/table.h"

#include <algorithm>
#include <cassert>

namespace sparktune {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(std::initializer_list<std::string> row) {
  AddRow(std::vector<std::string>(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto sep = [&]() {
    std::string s = "+";
    for (size_t w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') +
           " |";
    }
    s += "\n";
    return s;
  };
  std::string out = sep() + line(header_) + sep();
  for (const auto& row : rows_) out += line(row);
  out += sep();
  return out;
}

std::string TablePrinter::ToCsv() const {
  auto cell = [](const std::string& s) {
    if (s.find(',') == std::string::npos) return s;
    return "\"" + s + "\"";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) s += ",";
      s += cell(cells[c]);
    }
    s += "\n";
    return s;
  };
  std::string out = line(header_);
  for (const auto& row : rows_) out += line(row);
  return out;
}

}  // namespace sparktune
