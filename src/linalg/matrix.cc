#include "linalg/matrix.h"

#include <cmath>

namespace sparktune {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::MatVec(const Vector& x) const {
  assert(x.size() == cols_);
  Vector y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

void Matrix::AddDiagonal(double v) {
  size_t n = std::min(rows_, cols_);
  for (size_t i = 0; i < n; ++i) (*this)(i, i) += v;
}

double Dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

Vector Add(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Sub(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Scale(const Vector& a, double s) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

double Norm2(const Vector& a) { return std::sqrt(Dot(a, a)); }

}  // namespace sparktune
