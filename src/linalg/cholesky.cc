#include "linalg/cholesky.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "common/thread_pool.h"

namespace sparktune {

namespace {

// Panel width of the blocked factorization and column-block width of the
// matrix solves. Sized so a panel/block working set stays L2-resident at
// the matrix sizes GP inference sees (n up to ~1k).
constexpr size_t kBlock = 48;

// Register-tile width of the matrix-solve kernels: eight running columns
// live in registers across the whole k sweep, so each k term costs one load
// of the k-th solution row instead of a load+store round trip of the
// destination row. Per column the k terms still accumulate in ascending
// order, so the tiled kernels are bit-identical to the per-column solves.
constexpr size_t kTile = 8;

#if defined(__GNUC__) || defined(__clang__)
#define SPARKTUNE_VEC_SOLVE 1
// Eight doubles per vector, alignment relaxed to that of a double so tile
// loads need no alignment guarantee, may_alias so the casts from plain
// double rows are well-defined. Element-wise *, - and / on these are the
// same IEEE-754 operations as their scalar forms (no fusion: this file is
// built with -ffp-contract=off), so the vector kernels are bit-identical
// to the scalar tile code — just packed.
typedef double Vec8 __attribute__((vector_size(64), aligned(8), may_alias));
static_assert(kBlock % kTile == 0, "full blocks must tile evenly");
#endif

// Attempt a Cholesky factorization; returns false on a non-positive pivot.
//
// Blocked right-looking algorithm: factor a panel of kBlock columns, then
// subtract its outer product from the trailing submatrix (the O(n^3) bulk,
// parallelized over trailing rows). Every element (i, j) accumulates its
// inner-product terms k = 0..j-1 in strictly increasing k order — panels in
// order via the trailing updates, then the within-panel remainder — which
// is the exact operation sequence of the classic unblocked loop, so the
// factor is bit-identical to it at any thread count.
bool TryFactor(const Matrix& a, Matrix* l, int num_threads) {
  const size_t n = a.rows();
  *l = Matrix(n, n, 0.0);
  Matrix& lm = *l;
  for (size_t i = 0; i < n; ++i) {
    const double* ai = a.row(i);
    double* li = lm.row(i);
    for (size_t j = 0; j <= i; ++j) li[j] = ai[j];
  }

  // Scratch for the transposed panel the trailing SYRK update streams
  // (kBlock rows of k, up to n columns of j); reused across panels.
  std::vector<double> packed(n > kBlock ? kBlock * (n - kBlock) : 0);

  for (size_t p0 = 0; p0 < n; p0 += kBlock) {
    const size_t p1 = std::min(p0 + kBlock, n);
    // ---- Panel factor (serial): columns [p0, p1), all rows below ----
    for (size_t j = p0; j < p1; ++j) {
      double* lj = lm.row(j);
      double d = lj[j];
      for (size_t k = p0; k < j; ++k) d -= lj[k] * lj[k];
      if (d <= 0.0 || !std::isfinite(d)) return false;
      const double djj = std::sqrt(d);
      lj[j] = djj;
      for (size_t i = j + 1; i < n; ++i) {
        double* li = lm.row(i);
        double s = li[j];
        for (size_t k = p0; k < j; ++k) s -= li[k] * lj[k];
        li[j] = s / djj;
      }
    }
    // ---- Trailing SYRK update (parallel over independent rows) ----
    // Register-tiled: the panel's columns are first packed transposed
    // (packed[(k - p0) * width + (j - p1)] = L(j, k); a pure copy, so no
    // rounding is involved), which makes the j dimension contiguous per k.
    // Each row i then updates eight j columns at once: eight independent
    // accumulator chains, each subtracting its li[k] * L(j, k) terms in
    // strictly increasing k — per element the exact operation sequence of
    // the scalar j loop, which the reduction-ordered scalar code could
    // never vectorize. The panel columns read here (k < p1) are never
    // written by this update (it only touches j >= p1), so packing and the
    // row updates are race-free.
    if (p1 < n) {
      const size_t width = n - p1;
      ParallelFor(num_threads, width, [&](size_t r) {
        const double* lj = lm.row(p1 + r);
        for (size_t k = p0; k < p1; ++k) {
          packed[(k - p0) * width + r] = lj[k];
        }
      });
      ParallelFor(num_threads, width, [&](size_t r) {
        const size_t i = p1 + r;
        double* li = lm.row(i);
        size_t j = p1;
#if SPARKTUNE_VEC_SOLVE
        for (; j + kTile <= i + 1; j += kTile) {
          Vec8 acc = *reinterpret_cast<const Vec8*>(li + j);
          const double* bt = packed.data() + (j - p1);
          for (size_t k = p0; k < p1; ++k, bt += width) {
            const double lik = li[k];
            const Vec8 v = {lik, lik, lik, lik, lik, lik, lik, lik};
            acc -= v * *reinterpret_cast<const Vec8*>(bt);
          }
          *reinterpret_cast<Vec8*>(li + j) = acc;
        }
#endif
        for (; j <= i; ++j) {
          const double* lj = lm.row(j);
          double s = li[j];
          for (size_t k = p0; k < p1; ++k) s -= li[k] * lj[k];
          li[j] = s;
        }
      });
    }
  }
  return true;
}

}  // namespace

Result<Cholesky> Cholesky::Factor(const Matrix& a, double initial_jitter,
                                  double max_jitter, int num_threads) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  Cholesky chol;
  if (TryFactor(a, &chol.l_, num_threads)) return chol;
  // Escalate jitter geometrically.
  for (double jitter = initial_jitter; jitter <= max_jitter; jitter *= 10.0) {
    Matrix aj = a;
    aj.AddDiagonal(jitter);
    if (TryFactor(aj, &chol.l_, num_threads)) {
      chol.applied_jitter_ = jitter;
      return chol;
    }
  }
  return Status::Internal(StrFormat(
      "matrix not positive definite even with jitter %g", max_jitter));
}

Vector Cholesky::SolveLower(const Vector& b) const {
  size_t n = l_.rows();
  assert(b.size() == n);
  Vector y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l_(i, k) * y[k];
    y[i] = sum / l_(i, i);
  }
  return y;
}

Vector Cholesky::Solve(const Vector& b) const {
  size_t n = l_.rows();
  Vector y = SolveLower(b);
  // Back substitution with L^T. The k terms accumulate in strictly
  // decreasing order — the natural bottom-up order, and the documented
  // convention every batched upper solve reproduces exactly (a
  // right-looking panelled back substitution applies the bottom panels'
  // contributions first, so decreasing k is the only order it can keep).
  Vector x(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = n; k-- > ii + 1;) sum -= l_(k, ii) * x[k];
    x[ii] = sum / l_(ii, ii);
  }
  return x;
}

Matrix Cholesky::SolveLowerMatrix(const Matrix& b, int num_threads) const {
  const size_t n = l_.rows();
  const size_t m = b.cols();
  assert(b.rows() == n);
  Matrix y = b;
  if (n == 0) return y;
  double* const yb = y.row(0);
  // Forward substitution on blocks of right-hand-side columns: the block
  // stays cache-resident while L streams through once per block (the
  // per-column path re-reads all of L for every column). Columns are
  // independent, so the block split is bit-identical at any thread count.
  const size_t num_blocks = (m + kBlock - 1) / kBlock;
  ParallelFor(num_threads, num_blocks, [&](size_t blk) {
    const size_t c0 = blk * kBlock;
    const size_t c1 = std::min(c0 + kBlock, m);
#if SPARKTUNE_VEC_SOLVE
    // Full-width column blocks take the panelled vector path. The k
    // dimension is swept in kBlock-row panels: the diagonal panel is a
    // small triangular solve, then the solved panel is applied to every
    // row below it while the panel (48 rows x 48 columns, ~18 KB) is still
    // L1-resident — the flat k sweep instead re-streams the whole solved
    // prefix from L2 for every row. Per column the k terms still arrive in
    // ascending order (panels ascend, k ascends within each panel), the
    // divide still happens after a row's full prefix, and the six named
    // vector accumulators are independent chains that hide the subtract
    // latency — bit-identical to the per-column solve, just faster.
    if (c1 - c0 == kBlock) {
      for (size_t p0 = 0; p0 < n; p0 += kBlock) {
        const size_t p1 = std::min(p0 + kBlock, n);
        // Diagonal panel: triangular solve of rows [p0, p1).
        for (size_t i = p0; i < p1; ++i) {
          const double* __restrict li = l_.row(i);
          double* __restrict yi = yb + i * m;
          Vec8 a0 = *reinterpret_cast<const Vec8*>(yi + c0);
          Vec8 a1 = *reinterpret_cast<const Vec8*>(yi + c0 + 8);
          Vec8 a2 = *reinterpret_cast<const Vec8*>(yi + c0 + 16);
          Vec8 a3 = *reinterpret_cast<const Vec8*>(yi + c0 + 24);
          Vec8 a4 = *reinterpret_cast<const Vec8*>(yi + c0 + 32);
          Vec8 a5 = *reinterpret_cast<const Vec8*>(yi + c0 + 40);
          const double* __restrict yk = yb + p0 * m + c0;
          for (size_t k = p0; k < i; ++k, yk += m) {
            const double lik = li[k];
            const Vec8 v = {lik, lik, lik, lik, lik, lik, lik, lik};
            a0 -= v * *reinterpret_cast<const Vec8*>(yk);
            a1 -= v * *reinterpret_cast<const Vec8*>(yk + 8);
            a2 -= v * *reinterpret_cast<const Vec8*>(yk + 16);
            a3 -= v * *reinterpret_cast<const Vec8*>(yk + 24);
            a4 -= v * *reinterpret_cast<const Vec8*>(yk + 32);
            a5 -= v * *reinterpret_cast<const Vec8*>(yk + 40);
          }
          const double lii = li[i];
          const Vec8 d = {lii, lii, lii, lii, lii, lii, lii, lii};
          *reinterpret_cast<Vec8*>(yi + c0) = a0 / d;
          *reinterpret_cast<Vec8*>(yi + c0 + 8) = a1 / d;
          *reinterpret_cast<Vec8*>(yi + c0 + 16) = a2 / d;
          *reinterpret_cast<Vec8*>(yi + c0 + 24) = a3 / d;
          *reinterpret_cast<Vec8*>(yi + c0 + 32) = a4 / d;
          *reinterpret_cast<Vec8*>(yi + c0 + 40) = a5 / d;
        }
        // Trailing update: subtract the solved panel from every row below.
        for (size_t i = p1; i < n; ++i) {
          const double* __restrict li = l_.row(i);
          double* __restrict yi = yb + i * m;
          Vec8 a0 = *reinterpret_cast<const Vec8*>(yi + c0);
          Vec8 a1 = *reinterpret_cast<const Vec8*>(yi + c0 + 8);
          Vec8 a2 = *reinterpret_cast<const Vec8*>(yi + c0 + 16);
          Vec8 a3 = *reinterpret_cast<const Vec8*>(yi + c0 + 24);
          Vec8 a4 = *reinterpret_cast<const Vec8*>(yi + c0 + 32);
          Vec8 a5 = *reinterpret_cast<const Vec8*>(yi + c0 + 40);
          const double* __restrict yk = yb + p0 * m + c0;
          for (size_t k = p0; k < p1; ++k, yk += m) {
            const double lik = li[k];
            const Vec8 v = {lik, lik, lik, lik, lik, lik, lik, lik};
            a0 -= v * *reinterpret_cast<const Vec8*>(yk);
            a1 -= v * *reinterpret_cast<const Vec8*>(yk + 8);
            a2 -= v * *reinterpret_cast<const Vec8*>(yk + 16);
            a3 -= v * *reinterpret_cast<const Vec8*>(yk + 24);
            a4 -= v * *reinterpret_cast<const Vec8*>(yk + 32);
            a5 -= v * *reinterpret_cast<const Vec8*>(yk + 40);
          }
          *reinterpret_cast<Vec8*>(yi + c0) = a0;
          *reinterpret_cast<Vec8*>(yi + c0 + 8) = a1;
          *reinterpret_cast<Vec8*>(yi + c0 + 16) = a2;
          *reinterpret_cast<Vec8*>(yi + c0 + 24) = a3;
          *reinterpret_cast<Vec8*>(yi + c0 + 32) = a4;
          *reinterpret_cast<Vec8*>(yi + c0 + 40) = a5;
        }
      }
      return;
    }
#endif
    for (size_t i = 0; i < n; ++i) {
      const double* __restrict li = l_.row(i);
      double* __restrict yi = yb + i * m;
      const double lii = li[i];
      size_t c = c0;
      for (; c + kTile <= c1; c += kTile) {
        double a0 = yi[c], a1 = yi[c + 1], a2 = yi[c + 2], a3 = yi[c + 3];
        double a4 = yi[c + 4], a5 = yi[c + 5], a6 = yi[c + 6], a7 = yi[c + 7];
        const double* __restrict yk = yb + c;
        for (size_t k = 0; k < i; ++k, yk += m) {
          const double lik = li[k];
          a0 -= lik * yk[0];
          a1 -= lik * yk[1];
          a2 -= lik * yk[2];
          a3 -= lik * yk[3];
          a4 -= lik * yk[4];
          a5 -= lik * yk[5];
          a6 -= lik * yk[6];
          a7 -= lik * yk[7];
        }
        yi[c] = a0 / lii;
        yi[c + 1] = a1 / lii;
        yi[c + 2] = a2 / lii;
        yi[c + 3] = a3 / lii;
        yi[c + 4] = a4 / lii;
        yi[c + 5] = a5 / lii;
        yi[c + 6] = a6 / lii;
        yi[c + 7] = a7 / lii;
      }
      for (; c < c1; ++c) {
        double a = yi[c];
        const double* __restrict yk = yb + c;
        for (size_t k = 0; k < i; ++k, yk += m) a -= li[k] * *yk;
        yi[c] = a / lii;
      }
    }
  });
  return y;
}

Matrix Cholesky::SolveUpperMatrix(const Matrix& y, int num_threads) const {
  const size_t n = l_.rows();
  const size_t m = y.cols();
  assert(y.rows() == n);
  Matrix x = y;
  if (n == 0 || m == 0) return x;
  double* const xb = x.row(0);
  const double* const lb = l_.row(0);
  // Back substitution with L^T on independent column blocks (L^T's column
  // ii walks l_ with stride n). Per element the k terms arrive in strictly
  // decreasing order — matching Solve's documented back-substitution
  // convention — and partial sums round-trip through memory between
  // panels, which is exact, so every path below is bit-identical to the
  // naive bottom-up per-column loop.
  const size_t num_blocks = (m + kBlock - 1) / kBlock;
  ParallelFor(num_threads, num_blocks, [&](size_t blk) {
    const size_t c0 = blk * kBlock;
    const size_t c1 = std::min(c0 + kBlock, m);
#if SPARKTUNE_VEC_SOLVE
    // Full-width column blocks take the panelled vector path, the mirror
    // image of SolveLowerMatrix: k sweeps bottom-up in kBlock-row panels.
    // The diagonal panel is a small backward triangular solve; its solved
    // 48x48 block is then applied to every row above it while still
    // L1-resident (the flat bottom-up sweep re-streams the whole solved
    // suffix from L2 for every row). Panels descend and k descends within
    // each panel, so per column the terms arrive in strictly decreasing k.
    if (c1 - c0 == kBlock) {
      size_t p1 = n;
      while (p1 > 0) {
        const size_t p0 = ((p1 - 1) / kBlock) * kBlock;
        // Diagonal panel: backward triangular solve of rows [p0, p1).
        for (size_t ii = p1; ii-- > p0;) {
          double* __restrict xi = xb + ii * m;
          const double lii = lb[ii * n + ii];
          Vec8 a0 = *reinterpret_cast<const Vec8*>(xi + c0);
          Vec8 a1 = *reinterpret_cast<const Vec8*>(xi + c0 + 8);
          Vec8 a2 = *reinterpret_cast<const Vec8*>(xi + c0 + 16);
          Vec8 a3 = *reinterpret_cast<const Vec8*>(xi + c0 + 24);
          Vec8 a4 = *reinterpret_cast<const Vec8*>(xi + c0 + 32);
          Vec8 a5 = *reinterpret_cast<const Vec8*>(xi + c0 + 40);
          const double* __restrict xk = xb + (p1 - 1) * m + c0;
          const double* __restrict lk = lb + (p1 - 1) * n + ii;
          for (size_t k = p1; --k > ii; xk -= m, lk -= n) {
            const double lki = *lk;
            const Vec8 v = {lki, lki, lki, lki, lki, lki, lki, lki};
            a0 -= v * *reinterpret_cast<const Vec8*>(xk);
            a1 -= v * *reinterpret_cast<const Vec8*>(xk + 8);
            a2 -= v * *reinterpret_cast<const Vec8*>(xk + 16);
            a3 -= v * *reinterpret_cast<const Vec8*>(xk + 24);
            a4 -= v * *reinterpret_cast<const Vec8*>(xk + 32);
            a5 -= v * *reinterpret_cast<const Vec8*>(xk + 40);
          }
          const Vec8 d = {lii, lii, lii, lii, lii, lii, lii, lii};
          *reinterpret_cast<Vec8*>(xi + c0) = a0 / d;
          *reinterpret_cast<Vec8*>(xi + c0 + 8) = a1 / d;
          *reinterpret_cast<Vec8*>(xi + c0 + 16) = a2 / d;
          *reinterpret_cast<Vec8*>(xi + c0 + 24) = a3 / d;
          *reinterpret_cast<Vec8*>(xi + c0 + 32) = a4 / d;
          *reinterpret_cast<Vec8*>(xi + c0 + 40) = a5 / d;
        }
        // Upward trailing update: subtract the solved panel from every row
        // above it (k = p1-1 down to p0 for each).
        for (size_t i = 0; i < p0; ++i) {
          double* __restrict xi = xb + i * m;
          Vec8 a0 = *reinterpret_cast<const Vec8*>(xi + c0);
          Vec8 a1 = *reinterpret_cast<const Vec8*>(xi + c0 + 8);
          Vec8 a2 = *reinterpret_cast<const Vec8*>(xi + c0 + 16);
          Vec8 a3 = *reinterpret_cast<const Vec8*>(xi + c0 + 24);
          Vec8 a4 = *reinterpret_cast<const Vec8*>(xi + c0 + 32);
          Vec8 a5 = *reinterpret_cast<const Vec8*>(xi + c0 + 40);
          const double* __restrict xk = xb + (p1 - 1) * m + c0;
          const double* __restrict lk = lb + (p1 - 1) * n + i;
          for (size_t k = p1; k-- > p0; xk -= m, lk -= n) {
            const double lki = *lk;
            const Vec8 v = {lki, lki, lki, lki, lki, lki, lki, lki};
            a0 -= v * *reinterpret_cast<const Vec8*>(xk);
            a1 -= v * *reinterpret_cast<const Vec8*>(xk + 8);
            a2 -= v * *reinterpret_cast<const Vec8*>(xk + 16);
            a3 -= v * *reinterpret_cast<const Vec8*>(xk + 24);
            a4 -= v * *reinterpret_cast<const Vec8*>(xk + 32);
            a5 -= v * *reinterpret_cast<const Vec8*>(xk + 40);
          }
          *reinterpret_cast<Vec8*>(xi + c0) = a0;
          *reinterpret_cast<Vec8*>(xi + c0 + 8) = a1;
          *reinterpret_cast<Vec8*>(xi + c0 + 16) = a2;
          *reinterpret_cast<Vec8*>(xi + c0 + 24) = a3;
          *reinterpret_cast<Vec8*>(xi + c0 + 32) = a4;
          *reinterpret_cast<Vec8*>(xi + c0 + 40) = a5;
        }
        p1 = p0;
      }
      return;
    }
#endif
    // Partial column blocks: flat bottom-up sweep with a scalar register
    // tile, k strictly decreasing per column.
    for (size_t ii = n; ii-- > 0;) {
      double* __restrict xi = xb + ii * m;
      const double lii = lb[ii * n + ii];
      size_t c = c0;
      for (; c + kTile <= c1; c += kTile) {
        double a0 = xi[c], a1 = xi[c + 1], a2 = xi[c + 2], a3 = xi[c + 3];
        double a4 = xi[c + 4], a5 = xi[c + 5], a6 = xi[c + 6], a7 = xi[c + 7];
        const double* __restrict xk = xb + (n - 1) * m + c;
        const double* __restrict lk = lb + (n - 1) * n + ii;
        for (size_t k = n; k-- > ii + 1; xk -= m, lk -= n) {
          const double lki = *lk;
          a0 -= lki * xk[0];
          a1 -= lki * xk[1];
          a2 -= lki * xk[2];
          a3 -= lki * xk[3];
          a4 -= lki * xk[4];
          a5 -= lki * xk[5];
          a6 -= lki * xk[6];
          a7 -= lki * xk[7];
        }
        xi[c] = a0 / lii;
        xi[c + 1] = a1 / lii;
        xi[c + 2] = a2 / lii;
        xi[c + 3] = a3 / lii;
        xi[c + 4] = a4 / lii;
        xi[c + 5] = a5 / lii;
        xi[c + 6] = a6 / lii;
        xi[c + 7] = a7 / lii;
      }
      for (; c < c1; ++c) {
        double a = xi[c];
        const double* __restrict xk = xb + (n - 1) * m + c;
        const double* __restrict lk = lb + (n - 1) * n + ii;
        for (size_t k = n; k-- > ii + 1; xk -= m, lk -= n) a -= *lk * *xk;
        xi[c] = a / lii;
      }
    }
  });
  return x;
}

Matrix Cholesky::SolveMatrix(const Matrix& b, int num_threads) const {
  return SolveUpperMatrix(SolveLowerMatrix(b, num_threads), num_threads);
}

double Cholesky::LogDet() const {
  double acc = 0.0;
  for (size_t i = 0; i < l_.rows(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

}  // namespace sparktune
