#include "linalg/cholesky.h"

#include <cmath>

#include "common/strings.h"

namespace sparktune {

namespace {

// Attempt a plain Cholesky factorization; returns false on a non-positive
// pivot.
bool TryFactor(const Matrix& a, Matrix* l) {
  size_t n = a.rows();
  *l = Matrix(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= (*l)(i, k) * (*l)(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) return false;
        (*l)(i, i) = std::sqrt(sum);
      } else {
        (*l)(i, j) = sum / (*l)(j, j);
      }
    }
  }
  return true;
}

}  // namespace

Result<Cholesky> Cholesky::Factor(const Matrix& a, double initial_jitter,
                                  double max_jitter) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  Cholesky chol;
  if (TryFactor(a, &chol.l_)) return chol;
  // Escalate jitter geometrically.
  for (double jitter = initial_jitter; jitter <= max_jitter; jitter *= 10.0) {
    Matrix aj = a;
    aj.AddDiagonal(jitter);
    if (TryFactor(aj, &chol.l_)) {
      chol.applied_jitter_ = jitter;
      return chol;
    }
  }
  return Status::Internal(StrFormat(
      "matrix not positive definite even with jitter %g", max_jitter));
}

Vector Cholesky::SolveLower(const Vector& b) const {
  size_t n = l_.rows();
  assert(b.size() == n);
  Vector y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l_(i, k) * y[k];
    y[i] = sum / l_(i, i);
  }
  return y;
}

Vector Cholesky::Solve(const Vector& b) const {
  size_t n = l_.rows();
  Vector y = SolveLower(b);
  // Back substitution with L^T.
  Vector x(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l_(k, ii) * x[k];
    x[ii] = sum / l_(ii, ii);
  }
  return x;
}

Matrix Cholesky::SolveMatrix(const Matrix& b) const {
  Matrix out(b.rows(), b.cols());
  Vector col(b.rows());
  for (size_t c = 0; c < b.cols(); ++c) {
    for (size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    Vector x = Solve(col);
    for (size_t r = 0; r < b.rows(); ++r) out(r, c) = x[r];
  }
  return out;
}

double Cholesky::LogDet() const {
  double acc = 0.0;
  for (size_t i = 0; i < l_.rows(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

}  // namespace sparktune
