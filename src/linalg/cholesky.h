// Cholesky factorization with adaptive jitter, triangular solves and
// log-determinant — the numerical core of GP posterior inference.
//
// The factorization is a blocked right-looking panel algorithm (panel
// factor + register-tiled parallel trailing SYRK) and the matrix solves
// are blocked over right-hand-side columns with panelled k sweeps. Every
// element accumulates its inner-product terms in a documented, fixed index
// order — strictly increasing k for the factorization and the forward
// solves, strictly decreasing k for the back substitutions (the natural
// bottom-up order, and the only one a right-looking panelled back
// substitution can preserve exactly) — so results are bit-identical to the
// naive reference loops at any `num_threads` setting (see DESIGN.md
// "Threading model" / "Kernel engineering").
#pragma once

#include "common/result.h"
#include "linalg/matrix.h"

namespace sparktune {

// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
class Cholesky {
 public:
  // Factor A = L * L^T. If A is not numerically PD, progressively larger
  // jitter (up to `max_jitter`) is added to the diagonal before failing.
  // `num_threads` parallelizes the trailing-submatrix update (1 = serial,
  // 0 = global pool default width); the factor is bit-identical at any
  // setting.
  static Result<Cholesky> Factor(const Matrix& a, double initial_jitter = 1e-10,
                                 double max_jitter = 1e-2,
                                 int num_threads = 1);

  // Solve A x = b via forward/back substitution. The back-substitution
  // half accumulates k terms in strictly decreasing order (bottom-up).
  Vector Solve(const Vector& b) const;
  // Solve L y = b (forward substitution only, ascending k).
  Vector SolveLower(const Vector& b) const;
  // Solve L Y = B for all columns of B at once (forward substitution on
  // column blocks, no per-column copies). Column j of the result equals
  // SolveLower(column j of B) bit-for-bit; `num_threads` splits the
  // independent columns over the pool.
  Matrix SolveLowerMatrix(const Matrix& b, int num_threads = 1) const;
  // Solve L^T X = Y for all columns of Y at once (panelled back
  // substitution on column blocks). Column j equals the back-substitution
  // half of Solve(·) on column j bit-for-bit: per element the k terms
  // arrive in strictly decreasing order, panels bottom-up.
  Matrix SolveUpperMatrix(const Matrix& y, int num_threads = 1) const;
  // Solve A X = B for all columns of B at once (SolveLowerMatrix followed
  // by SolveUpperMatrix). Column j equals Solve(column j of B)
  // bit-for-bit.
  Matrix SolveMatrix(const Matrix& b, int num_threads = 1) const;

  // log |A| = 2 * sum(log L_ii).
  double LogDet() const;

  // Jitter that was actually applied to make the factorization succeed.
  double applied_jitter() const { return applied_jitter_; }

  const Matrix& lower() const { return l_; }

 private:
  Matrix l_;
  double applied_jitter_ = 0.0;
};

}  // namespace sparktune
