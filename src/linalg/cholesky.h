// Cholesky factorization with adaptive jitter, triangular solves and
// log-determinant — the numerical core of GP posterior inference.
#pragma once

#include "common/result.h"
#include "linalg/matrix.h"

namespace sparktune {

// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
class Cholesky {
 public:
  // Factor A = L * L^T. If A is not numerically PD, progressively larger
  // jitter (up to `max_jitter`) is added to the diagonal before failing.
  static Result<Cholesky> Factor(const Matrix& a, double initial_jitter = 1e-10,
                                 double max_jitter = 1e-2);

  // Solve A x = b via forward/back substitution.
  Vector Solve(const Vector& b) const;
  // Solve L y = b (forward substitution only).
  Vector SolveLower(const Vector& b) const;
  // Solve A X = B column-wise.
  Matrix SolveMatrix(const Matrix& b) const;

  // log |A| = 2 * sum(log L_ii).
  double LogDet() const;

  // Jitter that was actually applied to make the factorization succeed.
  double applied_jitter() const { return applied_jitter_; }

  const Matrix& lower() const { return l_; }

 private:
  Matrix l_;
  double applied_jitter_ = 0.0;
};

}  // namespace sparktune
