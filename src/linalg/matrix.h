// Dense row-major matrix and vector helpers sized for Gaussian-process
// regression over tuning histories (tens to a few hundred rows). Clarity and
// numerical robustness over raw speed.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace sparktune {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  // Raw row pointers for tight inner loops (row-major storage).
  double* row(size_t r) {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }
  const double* row(size_t r) const {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }

  // y = A * x
  Vector MatVec(const Vector& x) const;
  // C = A * B
  Matrix MatMul(const Matrix& other) const;
  Matrix Transpose() const;

  // Add v to every diagonal element (jitter / noise term).
  void AddDiagonal(double v);

  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

// Basic vector arithmetic.
double Dot(const Vector& a, const Vector& b);
Vector Add(const Vector& a, const Vector& b);
Vector Sub(const Vector& a, const Vector& b);
Vector Scale(const Vector& a, double s);
double Norm2(const Vector& a);

}  // namespace sparktune
