#include "forest/tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace sparktune {

RegressionTree::RegressionTree(TreeOptions options) : options_(options) {}

namespace {

struct SplitResult {
  bool found = false;
  int feature = -1;
  double threshold = 0.0;
  double score = std::numeric_limits<double>::infinity();  // weighted SSE
};

// Best split for one feature by exhaustive scan of sorted unique midpoints.
void BestSplitForFeature(const std::vector<std::vector<double>>& x,
                         const std::vector<double>& y,
                         const std::vector<int>& indices, int feature,
                         int min_leaf, SplitResult* best) {
  size_t n = indices.size();
  // Sort index order by feature value.
  std::vector<int> order(indices);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return x[static_cast<size_t>(a)][static_cast<size_t>(feature)] <
           x[static_cast<size_t>(b)][static_cast<size_t>(feature)];
  });
  // Prefix sums of y and y^2 in sorted order.
  double total_sum = 0.0, total_sq = 0.0;
  for (int i : order) {
    total_sum += y[static_cast<size_t>(i)];
    total_sq += y[static_cast<size_t>(i)] * y[static_cast<size_t>(i)];
  }
  double left_sum = 0.0, left_sq = 0.0;
  for (size_t k = 0; k + 1 < n; ++k) {
    double yi = y[static_cast<size_t>(order[k])];
    left_sum += yi;
    left_sq += yi * yi;
    double xv = x[static_cast<size_t>(order[k])][static_cast<size_t>(feature)];
    double xn =
        x[static_cast<size_t>(order[k + 1])][static_cast<size_t>(feature)];
    if (xn <= xv) continue;  // same value, no valid threshold
    size_t nl = k + 1, nr = n - nl;
    if (nl < static_cast<size_t>(min_leaf) ||
        nr < static_cast<size_t>(min_leaf)) {
      continue;
    }
    double right_sum = total_sum - left_sum;
    double right_sq = total_sq - left_sq;
    double sse_left = left_sq - left_sum * left_sum / static_cast<double>(nl);
    double sse_right =
        right_sq - right_sum * right_sum / static_cast<double>(nr);
    double score = sse_left + sse_right;
    if (score < best->score - 1e-15) {
      best->found = true;
      best->feature = feature;
      best->threshold = 0.5 * (xv + xn);
      best->score = score;
    }
  }
}

}  // namespace

Status RegressionTree::Fit(const std::vector<std::vector<double>>& x,
                           const std::vector<double>& y,
                           const std::vector<int>& sample_indices, Rng* rng) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("tree needs matching non-empty X and y");
  }
  num_features_ = x[0].size();
  nodes_.clear();
  std::vector<int> indices;
  if (sample_indices.empty()) {
    indices.resize(x.size());
    std::iota(indices.begin(), indices.end(), 0);
  } else {
    indices = sample_indices;
  }
  if (options_.max_features > 0 && rng == nullptr) {
    return Status::InvalidArgument("feature subsampling requires an Rng");
  }
  Build(x, y, indices, 0, rng);
  return Status::OK();
}

int RegressionTree::Build(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y,
                          std::vector<int>& indices, int depth, Rng* rng) {
  int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  double sum = 0.0, sq = 0.0;
  for (int i : indices) {
    sum += y[static_cast<size_t>(i)];
    sq += y[static_cast<size_t>(i)] * y[static_cast<size_t>(i)];
  }
  double mean = sum / static_cast<double>(indices.size());
  double node_sse = sq - sum * mean;
  nodes_[static_cast<size_t>(node_id)].value = mean;
  nodes_[static_cast<size_t>(node_id)].num_samples =
      static_cast<int>(indices.size());

  if (depth >= options_.max_depth ||
      static_cast<int>(indices.size()) < options_.min_samples_split) {
    return node_id;
  }

  // Candidate features.
  std::vector<int> features;
  int nf = static_cast<int>(num_features_);
  if (options_.max_features > 0 && options_.max_features < nf) {
    features = rng->SampleWithoutReplacement(nf, options_.max_features);
  } else {
    features.resize(static_cast<size_t>(nf));
    std::iota(features.begin(), features.end(), 0);
  }

  SplitResult best;
  for (int f : features) {
    BestSplitForFeature(x, y, indices, f, options_.min_samples_leaf, &best);
  }
  if (!best.found) return node_id;

  std::vector<int> left_idx, right_idx;
  for (int i : indices) {
    if (x[static_cast<size_t>(i)][static_cast<size_t>(best.feature)] <=
        best.threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  // Free the parent index list before recursing (keeps peak memory linear).
  indices.clear();
  indices.shrink_to_fit();

  int left = Build(x, y, left_idx, depth + 1, rng);
  int right = Build(x, y, right_idx, depth + 1, rng);
  Node& node = nodes_[static_cast<size_t>(node_id)];
  node.is_leaf = false;
  node.feature = best.feature;
  node.threshold = best.threshold;
  node.left = left;
  node.right = right;
  node.impurity_decrease = std::max(0.0, node_sse - best.score);
  return node_id;
}

std::vector<double> RegressionTree::FeatureImportance() const {
  std::vector<double> imp(num_features_, 0.0);
  double total = 0.0;
  for (const Node& n : nodes_) {
    if (n.is_leaf) continue;
    imp[static_cast<size_t>(n.feature)] += n.impurity_decrease;
    total += n.impurity_decrease;
  }
  if (total > 0.0) {
    for (auto& v : imp) v /= total;
  }
  return imp;
}

double RegressionTree::Predict(const std::vector<double>& x) const {
  assert(!nodes_.empty());
  int cur = 0;
  while (!nodes_[static_cast<size_t>(cur)].is_leaf) {
    const Node& n = nodes_[static_cast<size_t>(cur)];
    cur = x[static_cast<size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(cur)].value;
}

}  // namespace sparktune
