#include "forest/random_forest.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

namespace sparktune {

RandomForest::RandomForest(ForestOptions options) : options_(options) {}

Status RandomForest::Fit(const std::vector<std::vector<double>>& x,
                         const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("forest needs matching non-empty X and y");
  }
  n_obs_ = x.size();
  int nf = static_cast<int>(x[0].size());
  int max_features;
  if (options_.feature_fraction > 0.0) {
    max_features = std::max(1, static_cast<int>(options_.feature_fraction * nf));
  } else {
    max_features = std::max(1, static_cast<int>(std::sqrt(nf)));
  }

  Rng rng(options_.seed);
  int n = static_cast<int>(x.size());
  int boot_n =
      std::max(1, static_cast<int>(options_.bootstrap_fraction * n));
  TreeOptions topts = options_.tree;
  topts.max_features = max_features < nf ? max_features : -1;

  // Fork every tree's RNG serially off the master stream (identical order
  // to the serial loop), then fit trees concurrently: bootstrap draws and
  // feature subsampling read only the tree's own stream.
  size_t num_trees = static_cast<size_t>(options_.num_trees);
  std::vector<Rng> tree_rngs = ForkRngs(&rng, num_trees);
  std::vector<RegressionTree> trees(num_trees, RegressionTree(topts));
  std::vector<Status> statuses(num_trees, Status::OK());
  ParallelFor(options_.num_threads, num_trees, [&](size_t t) {
    Rng& tree_rng = tree_rngs[t];
    std::vector<int> sample(static_cast<size_t>(boot_n));
    for (auto& s : sample) {
      s = static_cast<int>(tree_rng.UniformInt(0, n - 1));
    }
    statuses[t] = trees[t].Fit(x, y, sample, &tree_rng);
  });
  trees_.clear();
  for (const Status& st : statuses) {
    SPARKTUNE_RETURN_IF_ERROR(st);
  }
  trees_ = std::move(trees);
  return Status::OK();
}

std::vector<double> RandomForest::FeatureImportance() const {
  std::vector<double> imp;
  if (trees_.empty()) return imp;
  imp.assign(trees_[0].num_features(), 0.0);
  for (const auto& tree : trees_) {
    std::vector<double> ti = tree.FeatureImportance();
    for (size_t i = 0; i < imp.size(); ++i) imp[i] += ti[i];
  }
  for (auto& v : imp) v /= static_cast<double>(trees_.size());
  return imp;
}

Prediction RandomForest::Predict(const std::vector<double>& x) const {
  Prediction pred;
  if (trees_.empty()) return pred;
  double sum = 0.0, sq = 0.0;
  for (const auto& tree : trees_) {
    double v = tree.Predict(x);
    sum += v;
    sq += v * v;
  }
  double n = static_cast<double>(trees_.size());
  pred.mean = sum / n;
  pred.variance = std::max(0.0, sq / n - pred.mean * pred.mean);
  return pred;
}

std::vector<Prediction> RandomForest::PredictBatch(
    const std::vector<std::vector<double>>& xs) const {
  std::vector<Prediction> out(xs.size());
  if (trees_.empty() || xs.empty()) return out;
  const size_t m = xs.size();
  constexpr size_t kChunk = 64;
  const size_t num_chunks = (m + kChunk - 1) / kChunk;
  const double n = static_cast<double>(trees_.size());
  ParallelFor(options_.num_threads, num_chunks, [&](size_t c) {
    const size_t j0 = c * kChunk;
    const size_t j1 = std::min(m, j0 + kChunk);
    std::vector<double> sum(j1 - j0, 0.0);
    std::vector<double> sq(j1 - j0, 0.0);
    for (const auto& tree : trees_) {
      for (size_t j = j0; j < j1; ++j) {
        double v = tree.Predict(xs[j]);
        sum[j - j0] += v;
        sq[j - j0] += v * v;
      }
    }
    for (size_t j = j0; j < j1; ++j) {
      double mean = sum[j - j0] / n;
      out[j].mean = mean;
      out[j].variance = std::max(0.0, sq[j - j0] / n - mean * mean);
    }
  });
  return out;
}

}  // namespace sparktune
