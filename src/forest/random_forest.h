// Bootstrap random forest regressor: the model behind fANOVA importance
// (paper §4.1) and the RFHOC/DAC baselines. Predicts mean and across-tree
// variance (SMAC-style uncertainty).
#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "forest/tree.h"
#include "model/surrogate.h"

namespace sparktune {

struct ForestOptions {
  int num_trees = 32;
  TreeOptions tree;
  // Fraction of features per split; <=0 means sqrt(num_features).
  double feature_fraction = -1.0;
  double bootstrap_fraction = 1.0;
  uint64_t seed = 17;
  // Threads for tree fitting: 1 = serial, 0 = global pool default width,
  // k > 1 = up to k threads. Every tree's RNG is forked serially from the
  // master stream before fitting, so the forest is bit-identical at any
  // setting.
  int num_threads = 1;
};

class RandomForest final : public Surrogate {
 public:
  explicit RandomForest(ForestOptions options = {});

  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<double>& y) override;

  // Mean prediction and variance across trees.
  Prediction Predict(const std::vector<double>& x) const override;

  // Batched traversal: candidates are split into chunks (parallel when
  // options.num_threads allows) and each chunk walks the trees in the outer
  // loop, so one tree's nodes stay hot across the whole chunk. Per candidate
  // the accumulation order over trees matches Predict — bit-identical.
  std::vector<Prediction> PredictBatch(
      const std::vector<std::vector<double>>& xs) const override;

  size_t num_observations() const override { return n_obs_; }

  // Mean impurity feature importance across trees (sums to ~1).
  std::vector<double> FeatureImportance() const;

  const std::vector<RegressionTree>& trees() const { return trees_; }

 private:
  ForestOptions options_;
  std::vector<RegressionTree> trees_;
  size_t n_obs_ = 0;
};

}  // namespace sparktune
