#include "forest/gbdt.h"

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/stats.h"

namespace sparktune {

GbdtRegressor::GbdtRegressor(GbdtOptions options) : options_(options) {}

Status GbdtRegressor::Fit(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("gbdt needs matching non-empty X and y");
  }
  trees_.clear();
  base_ = Mean(y);
  std::vector<double> pred(y.size(), base_);
  std::vector<double> residual(y.size());
  Rng rng(options_.seed);

  double best_rmse = std::numeric_limits<double>::infinity();
  int stall = 0;
  int n = static_cast<int>(x.size());
  int sub_n = std::max(2, static_cast<int>(options_.subsample * n));

  for (int round = 0; round < options_.num_rounds; ++round) {
    for (size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - pred[i];
    Rng round_rng = rng.Fork();
    std::vector<int> sample;
    if (sub_n < n) {
      sample = round_rng.SampleWithoutReplacement(n, sub_n);
    }
    RegressionTree tree(options_.tree);
    SPARKTUNE_RETURN_IF_ERROR(tree.Fit(x, residual, sample, &round_rng));
    for (size_t i = 0; i < y.size(); ++i) {
      pred[i] += options_.learning_rate * tree.Predict(x[i]);
    }
    trees_.push_back(std::move(tree));

    if (options_.early_stop_rounds > 0) {
      double sse = 0.0;
      for (size_t i = 0; i < y.size(); ++i) {
        double e = y[i] - pred[i];
        sse += e * e;
      }
      double rmse = std::sqrt(sse / static_cast<double>(y.size()));
      if (rmse < best_rmse - 1e-9) {
        best_rmse = rmse;
        stall = 0;
      } else if (++stall >= options_.early_stop_rounds) {
        break;
      }
    }
  }
  return Status::OK();
}

double GbdtRegressor::Predict(const std::vector<double>& x) const {
  double out = base_;
  for (const auto& tree : trees_) {
    out += options_.learning_rate * tree.Predict(x);
  }
  return out;
}

}  // namespace sparktune
