#include "forest/gbdt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace sparktune {

GbdtRegressor::GbdtRegressor(GbdtOptions options) : options_(options) {}

Status GbdtRegressor::Fit(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("gbdt needs matching non-empty X and y");
  }
  trees_.clear();
  base_ = Mean(y);
  std::vector<double> pred(y.size(), base_);
  std::vector<double> residual(y.size());
  Rng rng(options_.seed);

  double best_rmse = std::numeric_limits<double>::infinity();
  int stall = 0;
  int n = static_cast<int>(x.size());
  int sub_n = std::max(2, static_cast<int>(options_.subsample * n));

  for (int round = 0; round < options_.num_rounds; ++round) {
    for (size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - pred[i];
    Rng round_rng = rng.Fork();
    std::vector<int> sample;
    if (sub_n < n) {
      sample = round_rng.SampleWithoutReplacement(n, sub_n);
    }
    RegressionTree tree(options_.tree);
    SPARKTUNE_RETURN_IF_ERROR(tree.Fit(x, residual, sample, &round_rng));
    // Each row owns its slot, so refreshing the training predictions in
    // parallel is bit-identical to the serial loop.
    ParallelFor(options_.num_threads, y.size(), [&](size_t i) {
      pred[i] += options_.learning_rate * tree.Predict(x[i]);
    });
    trees_.push_back(std::move(tree));

    if (options_.early_stop_rounds > 0) {
      double sse = 0.0;
      for (size_t i = 0; i < y.size(); ++i) {
        double e = y[i] - pred[i];
        sse += e * e;
      }
      double rmse = std::sqrt(sse / static_cast<double>(y.size()));
      if (rmse < best_rmse - 1e-9) {
        best_rmse = rmse;
        stall = 0;
      } else if (++stall >= options_.early_stop_rounds) {
        break;
      }
    }
  }
  return Status::OK();
}

double GbdtRegressor::Predict(const std::vector<double>& x) const {
  double out = base_;
  for (const auto& tree : trees_) {
    out += options_.learning_rate * tree.Predict(x);
  }
  return out;
}

std::vector<double> GbdtRegressor::PredictBatch(
    const std::vector<std::vector<double>>& xs) const {
  std::vector<double> out(xs.size(), base_);
  if (xs.empty() || trees_.empty()) return out;
  const size_t m = xs.size();
  constexpr size_t kChunk = 64;
  const size_t num_chunks = (m + kChunk - 1) / kChunk;
  ParallelFor(options_.num_threads, num_chunks, [&](size_t c) {
    const size_t j0 = c * kChunk;
    const size_t j1 = std::min(m, j0 + kChunk);
    for (const auto& tree : trees_) {
      for (size_t j = j0; j < j1; ++j) {
        out[j] += options_.learning_rate * tree.Predict(xs[j]);
      }
    }
  });
  return out;
}

}  // namespace sparktune
