// Gradient-boosted regression trees (least-squares boosting) — the
// LightGBM stand-in for the meta-learner's task-similarity regressor
// (paper §5.1).
#pragma once

#include <vector>

#include "common/result.h"
#include "forest/tree.h"

namespace sparktune {

struct GbdtOptions {
  int num_rounds = 120;
  double learning_rate = 0.08;
  TreeOptions tree = {.max_depth = 4, .min_samples_leaf = 4,
                      .min_samples_split = 8, .max_features = -1};
  // Row subsampling per round (stochastic gradient boosting).
  double subsample = 0.8;
  uint64_t seed = 23;
  // Stop early when training RMSE improvement stalls for this many rounds
  // (0 disables).
  int early_stop_rounds = 0;
  // Threads for the per-round training-prediction refresh and for batched
  // inference: 1 = serial, 0 = global pool default width, k > 1 = up to k
  // threads. Bit-identical at any setting (each row owns its slot).
  int num_threads = 1;
};

class GbdtRegressor {
 public:
  explicit GbdtRegressor(GbdtOptions options = {});

  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<double>& y);

  double Predict(const std::vector<double>& x) const;

  // Batched scoring: candidate chunks walk the boosted trees in the outer
  // loop so each tree stays cache-hot across the chunk. out[i] equals
  // Predict(xs[i]) bit-for-bit (same per-candidate accumulation order).
  std::vector<double> PredictBatch(
      const std::vector<std::vector<double>>& xs) const;

  int num_trees() const { return static_cast<int>(trees_.size()); }
  double base_prediction() const { return base_; }

 private:
  GbdtOptions options_;
  double base_ = 0.0;
  std::vector<RegressionTree> trees_;
};

}  // namespace sparktune
