// CART regression tree: exact greedy variance-reduction splits. Exposes its
// node structure so fANOVA can walk leaf cells and compute marginals.
#pragma once

#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace sparktune {

struct TreeOptions {
  int max_depth = 14;
  int min_samples_leaf = 2;
  int min_samples_split = 4;
  // Features considered per split; -1 = all (set by RandomForest for
  // feature bagging).
  int max_features = -1;
};

class RegressionTree {
 public:
  struct Node {
    bool is_leaf = true;
    int feature = -1;
    double threshold = 0.0;
    int left = -1;   // node index, x[feature] <= threshold
    int right = -1;  // node index, x[feature] >  threshold
    double value = 0.0;  // leaf prediction (mean of samples)
    int num_samples = 0;
    // SSE decrease achieved by this node's split (0 for leaves); basis of
    // impurity feature importance.
    double impurity_decrease = 0.0;
  };

  explicit RegressionTree(TreeOptions options = {});

  // Fit on rows `x` (all the same width) and targets `y`. `sample_indices`
  // selects a bootstrap subset (empty = all rows). `rng` drives feature
  // subsampling; required when options.max_features != -1.
  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<double>& y,
             const std::vector<int>& sample_indices = {},
             Rng* rng = nullptr);

  double Predict(const std::vector<double>& x) const;

  // Total impurity (SSE) decrease attributed to each feature, normalized to
  // sum to 1 (all zeros for a stump).
  std::vector<double> FeatureImportance() const;

  const std::vector<Node>& nodes() const { return nodes_; }
  int root() const { return nodes_.empty() ? -1 : 0; }
  size_t num_features() const { return num_features_; }

 private:
  int Build(const std::vector<std::vector<double>>& x,
            const std::vector<double>& y, std::vector<int>& indices, int depth,
            Rng* rng);

  TreeOptions options_;
  std::vector<Node> nodes_;
  size_t num_features_ = 0;
};

}  // namespace sparktune
