// Task similarity learning (paper §5.1). Ground-truth distance between two
// tasks is computed from their fitted surrogates: the fraction of discordant
// pairs when ranking a shared set of random configurations,
//     Dist(M^i, M^j) = (1 - KendallTau(M^i(D_rand), M^j(D_rand))) / 2,
// scaled to [0, 1]. A GBDT regressor M_reg (the LightGBM stand-in) is then
// trained to predict this distance from the two tasks' meta-features, so a
// brand-new task (with no surrogate yet) can be compared against history.
#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "forest/gbdt.h"
#include "model/surrogate.h"

namespace sparktune {

// Surrogate-ranking distance on a shared probe set of encoded
// configurations; result in [0, 1] (0 = identical ranking).
double SurrogateDistance(const Surrogate& a, const Surrogate& b,
                         const std::vector<std::vector<double>>& probes);

struct SimilarityModelOptions {
  // Leaf minimums are small so the model stays usable when the knowledge
  // base holds only a few tasks (few labelled pairs).
  GbdtOptions gbdt = {.num_rounds = 150,
                      .learning_rate = 0.07,
                      .tree = {.max_depth = 4, .min_samples_leaf = 1,
                               .min_samples_split = 2, .max_features = -1},
                      .subsample = 1.0,
                      .seed = 29,
                      .early_stop_rounds = 0};
};

// M_reg: (meta_features_a, meta_features_b) -> distance in [0, 1].
// Features are symmetrized as [a, b, |a-b|]; both (a,b) and (b,a) orderings
// are included at training time.
class SimilarityModel {
 public:
  explicit SimilarityModel(SimilarityModelOptions options = {});

  // Train on labelled pairs. Each entry: meta features of both tasks and
  // the ground-truth surrogate distance.
  struct LabelledPair {
    std::vector<double> meta_a;
    std::vector<double> meta_b;
    double distance;
  };
  Status Train(const std::vector<LabelledPair>& pairs);

  // Predicted distance, clamped to [0, 1]. Symmetric by construction
  // (averages both orderings).
  double PredictDistance(const std::vector<double>& meta_a,
                         const std::vector<double>& meta_b) const;

  bool trained() const { return trained_; }

 private:
  static std::vector<double> PairFeatures(const std::vector<double>& a,
                                          const std::vector<double>& b);

  SimilarityModelOptions options_;
  GbdtRegressor gbdt_;
  bool trained_ = false;
};

}  // namespace sparktune
