// Task characterization (paper §5.1): a 75-dimensional meta-feature vector
// extracted from the (simulated) SparkEventLog — 11 stage-level features
// describing the operator mix / DAG shape and 64 task-level features
// (8 per-task metrics x 8 distribution statistics), mirroring Prats et al.
#pragma once

#include <string>
#include <vector>

#include "sparksim/event_log.h"

namespace sparktune {

inline constexpr int kNumStageFeatures = 11;
inline constexpr int kNumTaskFeatures = 64;
inline constexpr int kNumMetaFeatures = kNumStageFeatures + kNumTaskFeatures;

// Extract the meta-feature vector from one execution's event log. Scale-
// heavy features are log1p-compressed so downstream models see bounded
// ranges.
std::vector<double> ExtractMetaFeatures(const EventLog& log);

// Average meta-features over several executions of the same task (more
// robust characterization).
std::vector<double> AverageMetaFeatures(
    const std::vector<std::vector<double>>& features);

// Human-readable names, index-aligned with ExtractMetaFeatures (for
// debugging and docs).
std::vector<std::string> MetaFeatureNames();

}  // namespace sparktune
