#include "meta/meta_features.h"

#include <cassert>
#include <cmath>

namespace sparktune {

namespace {

bool IsMapLike(StageOp op) {
  return op == StageOp::kMap || op == StageOp::kSample;
}

bool IsActionLike(StageOp op) {
  return op == StageOp::kCollect || op == StageOp::kSink;
}

// Weighted combination of per-stage TaskMetricSummary values into job-level
// statistics. Weights are stage task counts.
struct CombinedMetric {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double skewness = 0.0;
  double total = 0.0;
};

CombinedMetric Combine(const EventLog& log,
                       const TaskMetricSummary StageLog::*member) {
  CombinedMetric out;
  double weight_sum = 0.0;
  bool first = true;
  for (const auto& s : log.stages) {
    const TaskMetricSummary& m = s.*member;
    double w = static_cast<double>(s.num_tasks) * s.iterations;
    if (w <= 0.0) continue;
    out.mean += w * m.mean;
    out.stddev += w * m.stddev;
    out.p50 += w * m.p50;
    out.p90 += w * m.p90;
    out.skewness += w * m.skewness;
    out.total += m.total * s.iterations;
    if (first) {
      out.min = m.min;
      out.max = m.max;
      first = false;
    } else {
      out.min = std::min(out.min, m.min);
      out.max = std::max(out.max, m.max);
    }
    weight_sum += w;
  }
  if (weight_sum > 0.0) {
    out.mean /= weight_sum;
    out.stddev /= weight_sum;
    out.p50 /= weight_sum;
    out.p90 /= weight_sum;
    out.skewness /= weight_sum;
  }
  return out;
}

void AppendMetric(const CombinedMetric& m, bool log_scale,
                  std::vector<double>* out) {
  auto tf = [log_scale](double v) {
    return log_scale ? std::log1p(std::max(0.0, v)) : v;
  };
  out->push_back(tf(m.mean));
  out->push_back(tf(m.stddev));
  out->push_back(tf(m.min));
  out->push_back(tf(m.max));
  out->push_back(tf(m.p50));
  out->push_back(tf(m.p90));
  out->push_back(m.skewness);  // already scale-free
  out->push_back(tf(m.total));
}

}  // namespace

std::vector<double> ExtractMetaFeatures(const EventLog& log) {
  std::vector<double> f;
  f.reserve(kNumMetaFeatures);

  // ---- Stage-level (11) ----
  double n = static_cast<double>(log.stages.size());
  int map_like = 0, shuffle = 0, join = 0, sort = 0, iterative = 0;
  int cached = 0, actions = 0;
  double total_iters = 0.0;
  for (const auto& s : log.stages) {
    if (IsMapLike(s.op)) ++map_like;
    if (IsShuffleOp(s.op)) ++shuffle;
    if (s.op == StageOp::kJoin || s.op == StageOp::kBroadcastJoin) ++join;
    if (s.op == StageOp::kSortByKey) ++sort;
    if (s.op == StageOp::kIterUpdate) ++iterative;
    if (s.cached) ++cached;
    if (IsActionLike(s.op)) ++actions;
    total_iters += s.iterations;
  }
  double inv_n = n > 0.0 ? 1.0 / n : 0.0;
  f.push_back(std::log1p(n));                       // 0 num stages
  f.push_back(map_like * inv_n);                    // 1 map-like fraction
  f.push_back(shuffle * inv_n);                     // 2 shuffle fraction
  f.push_back(join * inv_n);                        // 3 join fraction
  f.push_back(sort * inv_n);                        // 4 sort fraction
  f.push_back(iterative * inv_n);                   // 5 iterative fraction
  f.push_back(cached * inv_n);                      // 6 cached fraction
  f.push_back(actions * inv_n);                     // 7 action fraction
  f.push_back(std::log1p(total_iters));             // 8 total iterations
  f.push_back(log.is_sql ? 1.0 : 0.0);              // 9 SQL flag
  f.push_back(std::log1p(log.data_size_gb));        // 10 input scale

  // ---- Task-level (8 metrics x 8 stats = 64) ----
  AppendMetric(Combine(log, &StageLog::task_duration_sec), true, &f);
  AppendMetric(Combine(log, &StageLog::task_gc_sec), true, &f);
  AppendMetric(Combine(log, &StageLog::task_shuffle_read_mb), true, &f);
  AppendMetric(Combine(log, &StageLog::task_shuffle_write_mb), true, &f);
  AppendMetric(Combine(log, &StageLog::task_spill_mb), true, &f);
  AppendMetric(Combine(log, &StageLog::task_cpu_fraction), false, &f);
  AppendMetric(Combine(log, &StageLog::task_io_fraction), false, &f);
  AppendMetric(Combine(log, &StageLog::task_input_mb), true, &f);

  assert(static_cast<int>(f.size()) == kNumMetaFeatures);
  return f;
}

std::vector<double> AverageMetaFeatures(
    const std::vector<std::vector<double>>& features) {
  assert(!features.empty());
  std::vector<double> avg(features[0].size(), 0.0);
  for (const auto& v : features) {
    assert(v.size() == avg.size());
    for (size_t i = 0; i < v.size(); ++i) avg[i] += v[i];
  }
  for (auto& x : avg) x /= static_cast<double>(features.size());
  return avg;
}

std::vector<std::string> MetaFeatureNames() {
  std::vector<std::string> names = {
      "stage.num_stages",      "stage.map_fraction",
      "stage.shuffle_fraction", "stage.join_fraction",
      "stage.sort_fraction",   "stage.iterative_fraction",
      "stage.cached_fraction", "stage.action_fraction",
      "stage.total_iterations", "stage.is_sql",
      "stage.input_scale",
  };
  const char* metrics[] = {"duration", "gc",       "shuffle_read",
                           "shuffle_write", "spill", "cpu_fraction",
                           "io_fraction",   "input"};
  const char* stats[] = {"mean", "std", "min", "max",
                         "p50",  "p90", "skew", "total"};
  for (const char* m : metrics) {
    for (const char* s : stats) {
      names.push_back(std::string("task.") + m + "." + s);
    }
  }
  return names;
}

}  // namespace sparktune
