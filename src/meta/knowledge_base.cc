#include "meta/knowledge_base.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "common/stats.h"
#include "model/features.h"

namespace sparktune {

KnowledgeBase::KnowledgeBase(const ConfigSpace* space,
                             KnowledgeBaseOptions options)
    : space_(space), options_(options) {
  assert(space_ != nullptr);
  // Shared probe set for surrogate-ranking distances.
  Rng rng(options_.seed);
  probes_.reserve(static_cast<size_t>(options_.num_probe_configs));
  for (int i = 0; i < options_.num_probe_configs; ++i) {
    probes_.push_back(space_->ToUnit(space_->Sample(&rng)));
  }
}

Status KnowledgeBase::AddTask(const std::string& id,
                              const std::vector<double>& meta_features,
                              const RunHistory& history,
                              const std::vector<double>& importance) {
  if (history.empty()) {
    return Status::InvalidArgument("task history is empty: " + id);
  }
  TaskRecord rec;
  rec.id = id;
  rec.meta_features = meta_features;
  rec.importance = importance;

  // Collect non-failed observations (infeasible ones still carry signal).
  std::vector<std::pair<double, size_t>> ranked;  // (objective, history idx)
  for (size_t i = 0; i < history.size(); ++i) {
    if (history.failed(i) || !std::isfinite(history.objective(i))) continue;
    rec.x.push_back(space_->ToUnit(history.config(i)));
    rec.y.push_back(history.objective(i));
    if (history.feasible(i)) ranked.emplace_back(history.objective(i), i);
  }
  if (rec.x.size() < 3) {
    return Status::FailedPrecondition(
        "task has fewer than 3 usable observations: " + id);
  }
  // Base surrogates live in log-objective space, matching the Advisor's
  // log-target surrogates they are ensembled with (rankings are unchanged;
  // scales become commensurable across tasks).
  for (auto& v : rec.y) v = std::log(std::max(v, 1e-9));
  std::sort(ranked.begin(), ranked.end());  // ties break on history index
  for (size_t i = 0; i < std::min<size_t>(3, ranked.size()); ++i) {
    rec.top_configs.push_back(history.config(ranked[i].second));
  }

  rec.y_mean = Mean(rec.y);
  rec.y_scale = Stddev(rec.y);
  if (rec.y_scale < 1e-12) rec.y_scale = 1.0;

  auto schema = BuildFeatureSchema(*space_, 0);
  auto gp = std::make_shared<GaussianProcess>(schema, options_.gp);
  SPARKTUNE_RETURN_IF_ERROR(gp->Fit(rec.x, rec.y));
  rec.surrogate = std::move(gp);

  records_.push_back(std::move(rec));
  return Status::OK();
}

Status KnowledgeBase::TrainSimilarityModel() {
  if (records_.size() < 2) {
    return Status::FailedPrecondition(
        "similarity training needs at least 2 tasks");
  }
  std::vector<SimilarityModel::LabelledPair> pairs;
  // Self-pairs anchor the model at distance 0 for identical meta-features;
  // essential when only a handful of tasks exist.
  for (const auto& rec : records_) {
    pairs.push_back({rec.meta_features, rec.meta_features, 0.0});
  }
  // Cross-pairs, subsampled at fleet scale: labelling is quadratic in the
  // number of tasks and the GBDT needs only a few thousand examples.
  const size_t kMaxCrossPairs = 2000;
  size_t total_cross = records_.size() * (records_.size() - 1) / 2;
  Rng rng(options_.seed ^ 0x9a1b);
  double keep = total_cross <= kMaxCrossPairs
                    ? 1.0
                    : static_cast<double>(kMaxCrossPairs) / total_cross;
  for (size_t i = 0; i + 1 < records_.size(); ++i) {
    for (size_t j = i + 1; j < records_.size(); ++j) {
      if (keep < 1.0 && !rng.Bernoulli(keep)) continue;
      SimilarityModel::LabelledPair p;
      p.meta_a = records_[i].meta_features;
      p.meta_b = records_[j].meta_features;
      p.distance = SurrogateDistance(*records_[i].surrogate,
                                     *records_[j].surrogate, probes_);
      pairs.push_back(std::move(p));
    }
  }
  return similarity_.Train(pairs);
}

std::vector<double> KnowledgeBase::DistancesTo(
    const std::vector<double>& meta) const {
  std::vector<double> d(records_.size(), 1.0);
  if (records_.empty()) return d;
  if (similarity_.trained()) {
    for (size_t i = 0; i < records_.size(); ++i) {
      d[i] = similarity_.PredictDistance(meta, records_[i].meta_features);
    }
    return d;
  }
  // Fallback: z-scored Euclidean mapped to [0, 1).
  size_t dims = meta.size();
  std::vector<double> mean(dims, 0.0), sd(dims, 0.0);
  for (const auto& r : records_) {
    for (size_t k = 0; k < dims; ++k) mean[k] += r.meta_features[k];
  }
  for (auto& m : mean) m /= static_cast<double>(records_.size());
  for (const auto& r : records_) {
    for (size_t k = 0; k < dims; ++k) {
      double diff = r.meta_features[k] - mean[k];
      sd[k] += diff * diff;
    }
  }
  for (auto& s : sd) {
    s = std::sqrt(s / static_cast<double>(records_.size()));
    if (s < 1e-9) s = 1.0;
  }
  for (size_t i = 0; i < records_.size(); ++i) {
    double acc = 0.0;
    for (size_t k = 0; k < dims; ++k) {
      double z = (meta[k] - records_[i].meta_features[k]) / sd[k];
      acc += z * z;
    }
    double dist = std::sqrt(acc / static_cast<double>(dims));
    d[i] = dist / (1.0 + dist);
  }
  return d;
}

std::vector<int> KnowledgeBase::MostSimilar(const std::vector<double>& meta,
                                            int k) const {
  std::vector<double> d = DistancesTo(meta);
  std::vector<int> order(records_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return d[static_cast<size_t>(a)] < d[static_cast<size_t>(b)];
  });
  order.resize(std::min<size_t>(static_cast<size_t>(k), order.size()));
  return order;
}

std::vector<Configuration> KnowledgeBase::WarmStartConfigs(
    const std::vector<double>& meta) const {
  std::vector<Configuration> out;
  for (int idx : MostSimilar(meta, options_.warm_start_tasks)) {
    const TaskRecord& rec = records_[static_cast<size_t>(idx)];
    if (!rec.top_configs.empty()) out.push_back(rec.top_configs.front());
  }
  return out;
}

SurrogateFactory KnowledgeBase::MakeMetaSurrogateFactory(
    const std::vector<double>& meta) const {
  std::vector<double> d = DistancesTo(meta);
  // Calibrate distances to the knowledge base's own range: cost surfaces
  // share a strong global resource trend, so raw Kendall distances sit in a
  // narrow band (every task looks "somewhat similar"). Min-max rescaling
  // restores contrast so the truly similar tasks dominate the ensemble.
  double d_min = 1.0, d_max = 0.0;
  for (double v : d) {
    d_min = std::min(d_min, v);
    d_max = std::max(d_max, v);
  }
  auto calibrated = [&](double v) {
    if (d_max - d_min < 1e-9) return v;
    return (v - d_min) / (d_max - d_min);
  };
  std::vector<int> order = MostSimilar(meta, options_.max_ensemble_bases);
  std::vector<BaseSurrogate> bases;
  for (int idx : order) {
    const TaskRecord& rec = records_[static_cast<size_t>(idx)];
    BaseSurrogate b;
    b.model = rec.surrogate;
    b.similarity = 1.0 - calibrated(d[static_cast<size_t>(idx)]);
    b.input_dims = space_->size();
    b.y_mean = rec.y_mean;
    b.y_scale = rec.y_scale;
    bases.push_back(std::move(b));
  }
  GpOptions gp = options_.gp;
  return [bases = std::move(bases), gp](const std::vector<FeatureKind>& schema)
             -> std::unique_ptr<Surrogate> {
    MetaEnsembleOptions opts;
    opts.gp = gp;
    return std::make_unique<MetaEnsembleSurrogate>(schema, bases, opts);
  };
}

std::vector<double> KnowledgeBase::SuggestImportance(
    const std::vector<double>& meta) const {
  std::vector<double> d = DistancesTo(meta);
  std::vector<double> acc(space_->size(), 0.0);
  double total_w = 0.0;
  for (size_t i = 0; i < records_.size(); ++i) {
    const TaskRecord& rec = records_[i];
    if (rec.importance.size() != acc.size()) continue;
    double w = 1.0 - d[i];
    if (w <= 0.0) continue;
    for (size_t k = 0; k < acc.size(); ++k) acc[k] += w * rec.importance[k];
    total_w += w;
  }
  if (total_w <= 0.0) return {};
  for (auto& v : acc) v /= total_w;
  return acc;
}

}  // namespace sparktune
