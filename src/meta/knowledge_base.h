// Meta-knowledge learner (paper §5): a store of completed tuning tasks
// (meta-features, run histories, fitted base surrogates, importance
// scores). It trains the similarity model, and serves the three transfer
// mechanisms:
//   * warm-start initial configurations (best config of the top-3 most
//     similar tasks, §5.2),
//   * the meta-surrogate ensemble factory,
//   * importance-score transfer for sub-space suggestion.
//
// All tasks in one knowledge base share a ConfigSpace; configurations are
// compared in normalized unit coordinates so tasks from differently-sized
// clusters of the same parameter set remain commensurable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bo/advisor.h"
#include "bo/history.h"
#include "meta/meta_features.h"
#include "meta/meta_surrogate.h"
#include "meta/similarity.h"
#include "model/gp.h"
#include "space/config_space.h"

namespace sparktune {

struct TaskRecord {
  std::string id;
  std::vector<double> meta_features;
  // Config-only encoded observations (unit cube) and objective values.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  // Best configurations, best first (up to 3 kept).
  std::vector<Configuration> top_configs;
  std::shared_ptr<Surrogate> surrogate;  // GP fit on (x, y)
  std::vector<double> importance;        // optional, space-indexed
  double y_mean = 0.0;
  double y_scale = 1.0;
};

struct KnowledgeBaseOptions {
  GpOptions gp;
  SimilarityModelOptions similarity;
  int num_probe_configs = 64;
  uint64_t seed = 99;
  int warm_start_tasks = 3;  // top-k similar tasks for warm starting
  int max_ensemble_bases = 5;
};

class KnowledgeBase {
 public:
  KnowledgeBase(const ConfigSpace* space, KnowledgeBaseOptions options = {});

  // Register a completed (or in-progress) task. Fits its base surrogate on
  // feasible observations. `importance` may be empty.
  Status AddTask(const std::string& id,
                 const std::vector<double>& meta_features,
                 const RunHistory& history,
                 const std::vector<double>& importance = {});

  size_t size() const { return records_.size(); }
  const std::vector<TaskRecord>& records() const { return records_; }

  // Train M_reg from pairwise surrogate distances over a shared probe set.
  // Needs >= 2 tasks.
  Status TrainSimilarityModel();
  bool similarity_trained() const { return similarity_.trained(); }

  // Distances from `meta` to every record (via M_reg when trained,
  // z-scored-Euclidean fallback otherwise), aligned with records().
  std::vector<double> DistancesTo(const std::vector<double>& meta) const;

  // Indices of the most similar records, closest first.
  std::vector<int> MostSimilar(const std::vector<double>& meta, int k) const;

  // Warm-start configurations: best config of each of the top-k most
  // similar tasks (paper §5.2 "initial design with warm-starting").
  std::vector<Configuration> WarmStartConfigs(
      const std::vector<double>& meta) const;

  // Factory producing MetaEnsembleSurrogate instances wired with the most
  // similar base surrogates (weights 1 - dist). Pass to
  // Advisor::SetObjectiveSurrogateFactory.
  SurrogateFactory MakeMetaSurrogateFactory(
      const std::vector<double>& meta) const;

  // Similarity-weighted average of stored importance scores; empty when no
  // record carries importance.
  std::vector<double> SuggestImportance(const std::vector<double>& meta) const;

 private:
  const ConfigSpace* space_;
  KnowledgeBaseOptions options_;
  std::vector<TaskRecord> records_;
  SimilarityModel similarity_;
  std::vector<std::vector<double>> probes_;  // shared probe configs (unit)
};

}  // namespace sparktune
