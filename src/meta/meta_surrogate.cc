#include "meta/meta_surrogate.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/stats.h"

namespace sparktune {

MetaEnsembleSurrogate::MetaEnsembleSurrogate(std::vector<FeatureKind> schema,
                                             std::vector<BaseSurrogate> bases,
                                             MetaEnsembleOptions options)
    : schema_(std::move(schema)),
      bases_(std::move(bases)),
      options_(options) {}

Status MetaEnsembleSurrogate::Fit(const std::vector<std::vector<double>>& x,
                                  const std::vector<double>& y) {
  n_obs_ = x.size();
  target_mean_ = Mean(y);
  target_scale_ = Stddev(y);
  if (target_scale_ < 1e-12) target_scale_ = 1.0;

  current_ = std::make_unique<GaussianProcess>(schema_, options_.gp);
  SPARKTUNE_RETURN_IF_ERROR(current_->Fit(x, y));

  // ---- Self weight via k-fold CV rank correlation ----
  double self_raw = options_.min_self_weight;
  int folds = options_.cv_folds;
  if (static_cast<int>(x.size()) >= 2 * folds) {
    std::vector<double> predicted(x.size(), 0.0);
    for (int f = 0; f < folds; ++f) {
      std::vector<std::vector<double>> train_x;
      std::vector<double> train_y;
      std::vector<size_t> test_idx;
      for (size_t i = 0; i < x.size(); ++i) {
        if (static_cast<int>(i) % folds == f) {
          test_idx.push_back(i);
        } else {
          train_x.push_back(x[i]);
          train_y.push_back(y[i]);
        }
      }
      GaussianProcess fold_gp(schema_, options_.gp);
      if (!fold_gp.Fit(train_x, train_y).ok()) continue;
      std::vector<std::vector<double>> test_x;
      test_x.reserve(test_idx.size());
      for (size_t i : test_idx) test_x.push_back(x[i]);
      std::vector<Prediction> preds = fold_gp.PredictBatch(test_x);
      for (size_t t = 0; t < test_idx.size(); ++t) {
        predicted[test_idx[t]] = preds[t].mean;
      }
    }
    double tau = KendallTau(predicted, y);
    self_raw = std::clamp(tau, options_.min_self_weight, 1.0);
  }

  // ---- Normalize ----
  double decay = 1.0;
  if (options_.base_decay_horizon > 0) {
    decay = std::max(0.0, 1.0 - static_cast<double>(n_obs_) /
                               options_.base_decay_horizon);
  }
  base_weights_.resize(bases_.size());
  double base_mass = 0.0;
  for (size_t i = 0; i < bases_.size(); ++i) {
    base_weights_[i] = std::max(0.0, bases_[i].similarity) * decay;
    base_mass += base_weights_[i];
  }
  // The combined base mass never exceeds the self model's full confidence:
  // many similar sources share their vote instead of out-voting the
  // current task's own evidence.
  if (base_mass > 1.0) {
    for (auto& w : base_weights_) w /= base_mass;
    base_mass = 1.0;
  }
  double total = self_raw + base_mass;
  if (total <= 0.0) {
    self_weight_ = 1.0;
    std::fill(base_weights_.begin(), base_weights_.end(), 0.0);
  } else {
    self_weight_ = self_raw / total;
    for (auto& w : base_weights_) w /= total;
  }
  return Status::OK();
}

Prediction MetaEnsembleSurrogate::Predict(const std::vector<double>& x) const {
  Prediction out;
  if (current_ == nullptr) {
    // Not fitted: pure prior mix of base models in current scale (identity
    // scale since no target stats).
    double w = bases_.empty() ? 0.0 : 1.0 / static_cast<double>(bases_.size());
    for (const auto& b : bases_) {
      std::vector<double> xb(x.begin(),
                             x.begin() + static_cast<long>(std::min(
                                             b.input_dims, x.size())));
      Prediction p = b.model->Predict(xb);
      double std_mean = (p.mean - b.y_mean) / b.y_scale;
      out.mean += w * std_mean;
      out.variance += w * w * p.variance / (b.y_scale * b.y_scale);
    }
    return out;
  }

  Prediction self = current_->Predict(x);
  out.mean = self_weight_ * self.mean;
  out.variance = self_weight_ * self_weight_ * self.variance;
  for (size_t i = 0; i < bases_.size(); ++i) {
    double w = base_weights_[i];
    if (w <= 0.0) continue;
    const BaseSurrogate& b = bases_[i];
    std::vector<double> xb(x.begin(),
                           x.begin() + static_cast<long>(std::min(
                                           b.input_dims, x.size())));
    Prediction p = b.model->Predict(xb);
    // Standardize in the base task's scale, re-express in the current
    // task's scale.
    double std_mean = (p.mean - b.y_mean) / b.y_scale;
    double mean_here = target_mean_ + target_scale_ * std_mean;
    double var_here =
        p.variance / (b.y_scale * b.y_scale) * (target_scale_ * target_scale_);
    out.mean += w * mean_here;
    out.variance += w * w * var_here;
  }
  out.variance = std::max(out.variance, 1e-12);
  return out;
}

std::vector<Prediction> MetaEnsembleSurrogate::PredictBatch(
    const std::vector<std::vector<double>>& xs) const {
  std::vector<Prediction> out(xs.size());
  if (xs.empty()) return out;
  // Inputs truncated to one base model's feature width.
  auto truncated = [&](size_t input_dims) {
    std::vector<std::vector<double>> xb;
    xb.reserve(xs.size());
    for (const auto& x : xs) {
      xb.emplace_back(
          x.begin(),
          x.begin() + static_cast<long>(std::min(input_dims, x.size())));
    }
    return xb;
  };
  if (current_ == nullptr) {
    // Not fitted: pure prior mix of base models.
    double w = bases_.empty() ? 0.0 : 1.0 / static_cast<double>(bases_.size());
    for (const auto& b : bases_) {
      std::vector<Prediction> preds =
          b.model->PredictBatch(truncated(b.input_dims));
      for (size_t j = 0; j < xs.size(); ++j) {
        double std_mean = (preds[j].mean - b.y_mean) / b.y_scale;
        out[j].mean += w * std_mean;
        out[j].variance += w * w * preds[j].variance / (b.y_scale * b.y_scale);
      }
    }
    return out;
  }

  std::vector<Prediction> selfs = current_->PredictBatch(xs);
  for (size_t j = 0; j < xs.size(); ++j) {
    out[j].mean = self_weight_ * selfs[j].mean;
    out[j].variance = self_weight_ * self_weight_ * selfs[j].variance;
  }
  // Each base model scores the whole batch once; per-candidate the mix
  // accumulates self-then-bases in index order, exactly like Predict.
  for (size_t i = 0; i < bases_.size(); ++i) {
    double w = base_weights_[i];
    if (w <= 0.0) continue;
    const BaseSurrogate& b = bases_[i];
    std::vector<Prediction> preds =
        b.model->PredictBatch(truncated(b.input_dims));
    for (size_t j = 0; j < xs.size(); ++j) {
      double std_mean = (preds[j].mean - b.y_mean) / b.y_scale;
      double mean_here = target_mean_ + target_scale_ * std_mean;
      double var_here = preds[j].variance / (b.y_scale * b.y_scale) *
                        (target_scale_ * target_scale_);
      out[j].mean += w * mean_here;
      out[j].variance += w * w * var_here;
    }
  }
  for (Prediction& p : out) p.variance = std::max(p.variance, 1e-12);
  return out;
}

}  // namespace sparktune
