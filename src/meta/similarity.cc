#include "meta/similarity.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/stats.h"

namespace sparktune {

double SurrogateDistance(const Surrogate& a, const Surrogate& b,
                         const std::vector<std::vector<double>>& probes) {
  assert(!probes.empty());
  // One batched pass per surrogate over the shared probe set.
  std::vector<Prediction> pa = a.PredictBatch(probes);
  std::vector<Prediction> pb = b.PredictBatch(probes);
  std::vector<double> ya, yb;
  ya.reserve(probes.size());
  yb.reserve(probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    ya.push_back(pa[i].mean);
    yb.push_back(pb[i].mean);
  }
  double tau = KendallTau(ya, yb);
  return std::clamp((1.0 - tau) / 2.0, 0.0, 1.0);
}

SimilarityModel::SimilarityModel(SimilarityModelOptions options)
    : options_(options), gbdt_(options.gbdt) {}

std::vector<double> SimilarityModel::PairFeatures(
    const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::vector<double> f;
  f.reserve(a.size() * 3);
  f.insert(f.end(), a.begin(), a.end());
  f.insert(f.end(), b.begin(), b.end());
  for (size_t i = 0; i < a.size(); ++i) f.push_back(std::fabs(a[i] - b[i]));
  return f;
}

Status SimilarityModel::Train(const std::vector<LabelledPair>& pairs) {
  if (pairs.empty()) {
    return Status::InvalidArgument("no labelled pairs to train on");
  }
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  x.reserve(pairs.size() * 2);
  y.reserve(pairs.size() * 2);
  for (const auto& p : pairs) {
    x.push_back(PairFeatures(p.meta_a, p.meta_b));
    y.push_back(p.distance);
    x.push_back(PairFeatures(p.meta_b, p.meta_a));
    y.push_back(p.distance);
  }
  SPARKTUNE_RETURN_IF_ERROR(gbdt_.Fit(x, y));
  trained_ = true;
  return Status::OK();
}

double SimilarityModel::PredictDistance(const std::vector<double>& meta_a,
                                        const std::vector<double>& meta_b) const {
  assert(trained_);
  double d1 = gbdt_.Predict(PairFeatures(meta_a, meta_b));
  double d2 = gbdt_.Predict(PairFeatures(meta_b, meta_a));
  return std::clamp(0.5 * (d1 + d2), 0.0, 1.0);
}

}  // namespace sparktune
