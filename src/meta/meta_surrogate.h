// Meta-learning surrogate ensemble (paper §5.2, Eq. 12):
//   mu(x)    = sum_i w_i mu_i(x)
//   sigma^2  = sum_i w_i^2 sigma_i^2(x)
// Base surrogates come from similar past tasks with weights
// w_i = 1 - Dist(M^i, M^t); the current-task surrogate's weight is set by
// cross-validated ranking accuracy on its own observations and all weights
// are normalized to sum to 1. Base surrogates are trained on config-only
// features; predictive inputs are truncated accordingly.
#pragma once

#include <memory>
#include <vector>

#include "model/gp.h"
#include "model/surrogate.h"

namespace sparktune {

struct BaseSurrogate {
  std::shared_ptr<const Surrogate> model;
  // 1 - predicted distance to the current task, in [0, 1].
  double similarity = 0.0;
  // Number of leading features the base model expects.
  size_t input_dims = 0;
  // Scale normalizers: base tasks' objectives can live on wildly different
  // scales, so base predictions are standardized by their own training
  // statistics before mixing, then mapped into the current task's scale.
  double y_mean = 0.0;
  double y_scale = 1.0;
};

struct MetaEnsembleOptions {
  GpOptions gp;
  int cv_folds = 3;
  // Self weight floor/ceiling before normalization.
  double min_self_weight = 0.1;
  // Base-surrogate weights decay linearly to zero as the current task
  // accumulates this many observations: transfer dominates the cold start
  // and fades once the task's own evidence suffices.
  int base_decay_horizon = 30;
};

class MetaEnsembleSurrogate final : public Surrogate {
 public:
  MetaEnsembleSurrogate(std::vector<FeatureKind> schema,
                        std::vector<BaseSurrogate> bases,
                        MetaEnsembleOptions options = {});

  // Fits the current-task GP and computes the self weight via k-fold
  // cross-validated Kendall rank accuracy.
  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<double>& y) override;

  Prediction Predict(const std::vector<double>& x) const override;

  // Batched mix: one PredictBatch per base model (and one for the
  // current-task GP) instead of a per-point fan-out over the whole
  // ensemble. Bit-identical to per-point Predict.
  std::vector<Prediction> PredictBatch(
      const std::vector<std::vector<double>>& xs) const override;

  size_t num_observations() const override { return n_obs_; }

  double self_weight() const { return self_weight_; }
  const std::vector<double>& base_weights() const { return base_weights_; }

 private:
  std::vector<FeatureKind> schema_;
  std::vector<BaseSurrogate> bases_;
  MetaEnsembleOptions options_;

  std::unique_ptr<GaussianProcess> current_;
  double self_weight_ = 0.0;
  std::vector<double> base_weights_;  // normalized, aligned with bases_
  double target_mean_ = 0.0;
  double target_scale_ = 1.0;
  size_t n_obs_ = 0;
};

}  // namespace sparktune
