#include "bo/acq_optimizer.h"

#include <algorithm>
#include <limits>

namespace sparktune {

AcquisitionOptimizer::AcquisitionOptimizer(AcqOptOptions options)
    : options_(options) {}

AcqOptResult AcquisitionOptimizer::Maximize(
    const Subspace& subspace, const EncodeFn& encode, const EicAcquisition& acq,
    const SafeFn& safe, const UnsafetyFn& unsafety, const RunHistory* history,
    Rng* rng) const {
  struct Scored {
    Configuration config;
    double value;
  };
  std::vector<Scored> pool;
  pool.reserve(static_cast<size_t>(options_.num_candidates));

  // Least-unsafe fallback bookkeeping.
  Configuration least_unsafe;
  double least_unsafety = std::numeric_limits<double>::infinity();
  bool have_any = false;

  auto consider = [&](Configuration c) {
    if (history != nullptr && history->Contains(c)) return;
    if (unsafety) {
      double u = unsafety(c);
      if (!have_any || u < least_unsafety) {
        least_unsafety = u;
        least_unsafe = c;
        have_any = true;
      }
    } else if (!have_any) {
      least_unsafe = c;
      have_any = true;
    }
    if (safe && !safe(c)) return;
    pool.push_back({std::move(c), 0.0});
  };

  // Scattered candidates.
  for (int i = 0; i < options_.num_candidates; ++i) {
    consider(subspace.Sample(rng));
  }
  // Exploit neighborhood of the incumbent and recent configurations.
  if (history != nullptr && !history->empty()) {
    const Observation* best = history->BestFeasible();
    if (best != nullptr) {
      for (int i = 0; i < options_.num_candidates / 8; ++i) {
        consider(subspace.Neighbor(subspace.Project(best->config),
                                   options_.local_sigma, rng));
      }
    }
    size_t recent =
        std::min<size_t>(3, history->size());
    for (size_t k = history->size() - recent; k < history->size(); ++k) {
      consider(subspace.Neighbor(subspace.Project(history->at(k).config),
                                 options_.local_sigma, rng));
    }
  }

  AcqOptResult result;
  if (pool.empty()) {
    // Safe set empty: suggest the configuration whose worst-case constraint
    // violation is smallest — the point most likely to extend the safe
    // region (SafeOpt-style expansion).
    result.safe_fallback_used = true;
    result.config = have_any ? least_unsafe : subspace.Sample(rng);
    result.acq_value = 0.0;
    result.raw_ei = acq.RawEi(encode(result.config));
    return result;
  }

  for (auto& s : pool) {
    s.value = acq.Eval(encode(s.config));
  }
  std::sort(pool.begin(), pool.end(),
            [](const Scored& a, const Scored& b) { return a.value > b.value; });

  // Local hill-climbing from the top starts.
  int starts = std::min<int>(options_.num_local_starts,
                             static_cast<int>(pool.size()));
  Configuration best_config = pool[0].config;
  double best_value = pool[0].value;
  for (int s = 0; s < starts; ++s) {
    Configuration cur = pool[static_cast<size_t>(s)].config;
    double cur_value = pool[static_cast<size_t>(s)].value;
    double sigma = options_.local_sigma;
    for (int step = 0; step < options_.local_steps; ++step) {
      Configuration cand = subspace.Neighbor(cur, sigma, rng);
      if (history != nullptr && history->Contains(cand)) continue;
      if (safe && !safe(cand)) continue;
      double v = acq.Eval(encode(cand));
      if (v > cur_value) {
        cur = std::move(cand);
        cur_value = v;
      } else {
        sigma *= 0.9;  // anneal toward fine-grained moves
      }
    }
    if (cur_value > best_value) {
      best_value = cur_value;
      best_config = cur;
    }
  }

  result.config = best_config;
  result.acq_value = best_value;
  result.raw_ei = acq.RawEi(encode(best_config));
  return result;
}

}  // namespace sparktune
