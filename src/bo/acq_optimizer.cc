#include "bo/acq_optimizer.h"

#include <algorithm>
#include <limits>

#include "common/thread_pool.h"

namespace sparktune {

AcquisitionOptimizer::AcquisitionOptimizer(AcqOptOptions options)
    : options_(options) {}

AcqOptResult AcquisitionOptimizer::Maximize(
    const Subspace& subspace, const EncodeFn& encode, const EicAcquisition& acq,
    const SafeFn& safe, const UnsafetyFn& unsafety, const RunHistory* history,
    Rng* rng, const SafeBatchFn& safe_batch,
    const UnsafetyBatchFn& unsafety_batch) const {
  struct Scored {
    Configuration config;
    double value = 0.0;
  };

  // ---- Candidate generation (serial: preserves the rng draw order) ----
  std::vector<Configuration> cands;
  cands.reserve(static_cast<size_t>(options_.num_candidates) + 8);
  // Scattered candidates.
  for (int i = 0; i < options_.num_candidates; ++i) {
    cands.push_back(subspace.Sample(rng));
  }
  // Exploit neighborhood of the incumbent and recent configurations. At
  // least one incumbent neighbor even for small pools (num_candidates < 8
  // used to yield zero and silently disable local exploitation).
  if (history != nullptr && !history->empty()) {
    int best = history->BestFeasibleIndex();
    if (best >= 0) {
      Configuration best_config = history->config(static_cast<size_t>(best));
      int local = std::max(1, options_.num_candidates / 8);
      for (int i = 0; i < local; ++i) {
        cands.push_back(subspace.Neighbor(subspace.Project(best_config),
                                          options_.local_sigma, rng));
      }
    }
    size_t recent = std::min<size_t>(3, history->size());
    for (size_t k = history->size() - recent; k < history->size(); ++k) {
      cands.push_back(subspace.Neighbor(subspace.Project(history->config(k)),
                                        options_.local_sigma, rng));
    }
  }

  // ---- Candidate evaluation (batched: one surrogate pass per stage) ----
  struct CandEval {
    bool dup = false;
    bool is_safe = true;
    double unsafety_value = 0.0;
    double acq_value = 0.0;
  };
  std::vector<CandEval> evals(cands.size());
  ParallelFor(options_.num_threads, cands.size(), [&](size_t i) {
    evals[i].dup = history != nullptr && history->Contains(cands[i]);
  });
  std::vector<size_t> live;
  live.reserve(cands.size());
  for (size_t i = 0; i < cands.size(); ++i) {
    if (!evals[i].dup) live.push_back(i);
  }
  if (!live.empty()) {
    std::vector<Configuration> live_cfg;
    live_cfg.reserve(live.size());
    for (size_t i : live) live_cfg.push_back(cands[i]);
    // Unsafety for every non-duplicate candidate (ranks the fallback).
    if (unsafety_batch) {
      std::vector<double> u = unsafety_batch(live_cfg);
      for (size_t t = 0; t < live.size(); ++t) {
        evals[live[t]].unsafety_value = u[t];
      }
    } else if (unsafety) {
      ParallelFor(options_.num_threads, live.size(), [&](size_t t) {
        evals[live[t]].unsafety_value = unsafety(live_cfg[t]);
      });
    }
    // Safe-region screen.
    if (safe_batch) {
      std::vector<char> s = safe_batch(live_cfg);
      for (size_t t = 0; t < live.size(); ++t) {
        evals[live[t]].is_safe = s[t] != 0;
      }
    } else if (safe) {
      ParallelFor(options_.num_threads, live.size(), [&](size_t t) {
        evals[live[t]].is_safe = safe(live_cfg[t]);
      });
    }
    // Acquisition for the safe survivors: the whole pool in one batched
    // surrogate pass instead of a Predict per candidate.
    std::vector<size_t> scored;
    std::vector<std::vector<double>> feats;
    scored.reserve(live.size());
    feats.reserve(live.size());
    for (size_t t = 0; t < live.size(); ++t) {
      if (!evals[live[t]].is_safe) continue;
      scored.push_back(live[t]);
      feats.push_back(encode(live_cfg[t]));
    }
    std::vector<double> acq_vals = acq.EvalBatch(feats);
    for (size_t t = 0; t < scored.size(); ++t) {
      evals[scored[t]].acq_value = acq_vals[t];
    }
  }

  // ---- Serial fold in candidate order (same tie-breaking as serial) ----
  std::vector<Scored> pool;
  pool.reserve(cands.size());
  Configuration least_unsafe;
  double least_unsafety = std::numeric_limits<double>::infinity();
  bool have_any = false;
  for (size_t i = 0; i < cands.size(); ++i) {
    const CandEval& e = evals[i];
    if (e.dup) continue;
    if (unsafety) {
      if (!have_any || e.unsafety_value < least_unsafety) {
        least_unsafety = e.unsafety_value;
        least_unsafe = cands[i];
        have_any = true;
      }
    } else if (!have_any) {
      least_unsafe = cands[i];
      have_any = true;
    }
    if (!e.is_safe) continue;
    pool.push_back({std::move(cands[i]), e.acq_value});
  }

  AcqOptResult result;
  if (pool.empty()) {
    // Safe set empty: suggest the configuration whose worst-case constraint
    // violation is smallest — the point most likely to extend the safe
    // region (SafeOpt-style expansion).
    result.safe_fallback_used = true;
    result.config = have_any ? least_unsafe : subspace.Sample(rng);
    result.acq_value = 0.0;
    result.raw_ei = acq.RawEi(encode(result.config));
    return result;
  }

  std::sort(pool.begin(), pool.end(),
            [](const Scored& a, const Scored& b) { return a.value > b.value; });

  // ---- Local hill-climbing from the top starts (parallel) ----
  // Each start owns a forked RNG stream, so climbs are independent of each
  // other and of the thread count.
  int starts = std::min<int>(options_.num_local_starts,
                             static_cast<int>(pool.size()));
  std::vector<Rng> climb_rngs = ForkRngs(rng, static_cast<size_t>(starts));
  std::vector<Scored> climbed(static_cast<size_t>(starts));
  ParallelFor(options_.num_threads, static_cast<size_t>(starts), [&](size_t s) {
    Rng* crng = &climb_rngs[s];
    Configuration cur = pool[s].config;
    double cur_value = pool[s].value;
    double sigma = options_.local_sigma;
    auto rejected = [&](const Configuration& c) {
      return (history != nullptr && history->Contains(c)) ||
             (safe && !safe(c));
    };
    for (int step = 0; step < options_.local_steps; ++step) {
      Configuration cand = subspace.Neighbor(cur, sigma, crng);
      // A duplicate or unsafe candidate is not a wasted step: anneal sigma
      // and redraw closer to `cur`, where membership is likeliest.
      bool rej = rejected(cand);
      for (int retry = 0; rej && retry < options_.max_rejected_retries;
           ++retry) {
        sigma *= 0.9;
        cand = subspace.Neighbor(cur, sigma, crng);
        rej = rejected(cand);
      }
      if (rej) {
        sigma *= 0.9;
        continue;
      }
      double v = acq.Eval(encode(cand));
      if (v > cur_value) {
        cur = std::move(cand);
        cur_value = v;
      } else {
        sigma *= 0.9;  // anneal toward fine-grained moves
      }
    }
    climbed[s] = {std::move(cur), cur_value};
  });

  Configuration best_config = pool[0].config;
  double best_value = pool[0].value;
  for (const Scored& c : climbed) {
    if (c.value > best_value) {
      best_value = c.value;
      best_config = c.config;
    }
  }

  result.config = best_config;
  result.acq_value = best_value;
  result.raw_ei = acq.RawEi(encode(best_config));
  return result;
}

}  // namespace sparktune
