// Generic black-box optimization facade — the paper's framework detached
// from Spark (its BO engine came from the generalized OpenBox service, and
// the conclusion plans to "extend this framework to support more data
// analytics systems"). Minimizes any function over a ConfigSpace with the
// same machinery the Spark tuner uses: GP surrogates in (optionally) log
// space, EI/EIC acquisition, safe region, adaptive sub-space, AGD.
//
// Mapping: the black-box value is treated as the runtime T(x); the resource
// rate R(x) defaults to 1 (pure minimization; beta has no effect then), or
// can be supplied as a white-box cost term. A safety bound on the black-box
// value maps to the runtime constraint T(x) <= bound.
#pragma once

#include <functional>

#include "bo/advisor.h"

namespace sparktune {

struct OptimizerOptions {
  int budget = 30;
  // Safe exploration bound: observed values are expected to stay at or
  // below this (infinity = unconstrained).
  double safety_bound = std::numeric_limits<double>::infinity();
  // Optional white-box resource/cost term and its trade-off beta (Eq. 1).
  std::function<double(const Configuration&)> resource_fn;
  double beta = 1.0;
  double resource_bound = std::numeric_limits<double>::infinity();
  AdvisorOptions advisor;  // objective/resource/seed fields are overwritten
  uint64_t seed = 1;
};

struct OptimizerReport {
  Configuration best_config;
  double best_value = std::numeric_limits<double>::infinity();
  int evaluations = 0;
  int violations = 0;  // observations above the safety bound
};

class Optimizer {
 public:
  // The black box: returns the value to minimize. Throwing is not
  // supported; encode failures as +infinity (they are treated as failed,
  // penalized observations).
  using ObjectiveFn = std::function<double(const Configuration&)>;

  Optimizer(const ConfigSpace* space, OptimizerOptions options);

  // Run the full budget and return the best found.
  OptimizerReport Minimize(const ObjectiveFn& fn);

  // Step-wise API for callers that own the evaluation loop.
  Configuration Suggest();
  void Observe(const Configuration& config, double value);

  const RunHistory& history() const { return advisor_.history(); }
  const Advisor& advisor() const { return advisor_; }

 private:
  const ConfigSpace* space_;
  OptimizerOptions options_;
  TuningObjective objective_;
  Advisor advisor_;
  int iteration_ = 0;
};

}  // namespace sparktune
