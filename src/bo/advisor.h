// Advisor: the efficient & safe configuration generator (paper Algorithm 1
// + Algorithm 2). Each call to Suggest():
//   * during the initial design, returns warm-start configurations (from
//     the meta-learner) or low-discrepancy samples;
//   * afterwards trains the objective and runtime surrogates on the run
//     history, and either
//       - takes an AGD step from the incumbent every N_AGD iterations, or
//       - maximizes EIC over (adaptive sub-space ∩ safe region).
// Observe() feeds back results, driving sub-space success/failure
// adaptation and fANOVA importance updates.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "bo/acq_optimizer.h"
#include "bo/agd.h"
#include "bo/history.h"
#include "bo/subspace_manager.h"
#include "model/features.h"
#include "model/gp.h"
#include "space/sobol.h"
#include "tuner/objective.h"

namespace sparktune {

using SurrogateFactory = std::function<std::unique_ptr<Surrogate>(
    const std::vector<FeatureKind>& schema)>;

// Counters for the BO stack's graceful-degradation ladder (DESIGN.md §7):
// fresh GP fit → previous-model reuse → history-best/default suggestion.
// A surrogate fit failure (e.g. Cholesky jitter exhaustion) never errors a
// tick; it bumps a counter and drops one rung.
struct DegradationStats {
  long long fit_failures = 0;          // surrogate Fit() returned an error
  long long previous_model_reuses = 0; // rung 1: kept the last fitted model
  long long prior_only_fits = 0;       // rung 2: no model to reuse
  long long fallback_suggestions = 0;  // rung 3: history-best neighbor served
};

// Serialized mutable state of an Advisor (checkpoint payload). Surrogates
// are NOT saved: they are refit from the restored history on the next
// Suggest, which reproduces them bit-identically. RNG cursors (main stream,
// init sampler) are saved exactly so the restored suggestion trajectory
// matches an uninterrupted run.
struct AdvisorState {
  RngState rng;
  uint64_t init_sampler_generated = 0;
  SubspaceState subspace;
  std::vector<Observation> observations;
  std::vector<Configuration> warm_start;
  int suggestions = 0;
  uint64_t init_served = 0;
  bool use_time_context = false;
  DegradationStats degradation;
};

struct AdvisorOptions {
  TuningObjective objective;
  // Exact resource-rate function R(x); required for resource constraints
  // and AGD. Defaults to a constant (pure runtime tuning).
  std::function<double(const Configuration&)> resource_fn;

  int init_samples = 5;

  // Constraint-weighted acquisition (EIC, Eq. 6). Disabling it yields
  // vanilla EI that ignores constraints entirely (the paper's "vanilla BO"
  // ablation arm in Figure 8).
  bool enable_eic = true;

  // Safe-region filtering (Eq. 8) plus the safety-aware initial design and
  // AGD step backtracking.
  bool enable_safety = true;
  double safety_gamma = 0.5;  // gamma in Eq. 8, in (0, 1]

  bool enable_agd = true;
  AgdOptions agd;

  bool enable_subspace = true;
  SubspaceOptions subspace;
  std::vector<std::string> expert_ranking;

  AcqOptOptions acq;

  // Append workload-context features to the surrogate input: the
  // normalized data size when observable, otherwise (paper §3.3, the data
  // privacy case) hour-of-day / day-of-week features characterizing the
  // periodic change of data.
  bool datasize_aware = true;
  bool time_context_fallback = true;
  double datasize_reference_gb = 1024.0;

  GpOptions gp;
  // Fit surrogates on log-transformed objective/runtime values. Costs and
  // runtimes are positive with multiplicative structure (failures sit
  // orders of magnitude above good configs); log space keeps the GP
  // well-conditioned and makes EI scale-free.
  bool log_targets = true;
  uint64_t seed = 42;
};

class Advisor {
 public:
  Advisor(const ConfigSpace* space, AdvisorOptions options);

  // Meta-learning hooks (paper §5.2).
  void SetWarmStartConfigs(std::vector<Configuration> configs);
  void SetObjectiveSurrogateFactory(SurrogateFactory factory);
  void SeedImportance(const std::vector<double>& scores, double weight = 1.0);

  // Produce the next configuration. `datasize_hint_gb` is the expected
  // input size of the upcoming execution (<0 = unknown); `hours_hint` is
  // its start time in hours since the task started (used as the context
  // when the data size is hidden).
  Configuration Suggest(double datasize_hint_gb = -1.0,
                        double hours_hint = -1.0);

  // Report the evaluated outcome of the last suggestion (or any external
  // execution, e.g. the manual baseline run).
  void Observe(Observation obs);

  const RunHistory& history() const { return history_; }
  const ConfigSpace& space() const { return *space_; }
  const AdvisorOptions& options() const { return options_; }
  const SubspaceManager& subspace_manager() const { return subspace_; }

  // Incumbent (best feasible) configuration; default config before any
  // feasible observation.
  Configuration BestConfig() const;
  double BestObjective() const { return history_.BestObjective(); }

  // Diagnostics from the last Suggest() call.
  double last_raw_ei() const { return last_raw_ei_; }
  bool last_was_agd() const { return last_was_agd_; }
  bool last_safe_fallback() const { return last_safe_fallback_; }
  bool last_was_initial() const { return last_was_initial_; }

  // Reset the iteration machinery but keep learned importance; used by the
  // controller when re-tuning starts (§3.3 restart criterion).
  void ResetForRestart();

  // Feature encoding used for surrogate inputs (public so the
  // meta-learner can train base surrogates in the same space).
  std::vector<double> Encode(const Configuration& c, double data_size_gb,
                             double hours = -1.0) const;
  std::vector<FeatureKind> Schema() const;
  // True when the surrogates currently use the hour-of-day/day-of-week
  // context instead of the data size.
  bool using_time_context() const { return use_time_context_; }

  // Graceful-degradation counters (never reset; see DegradationStats).
  const DegradationStats& degradation() const { return degradation_; }

  // Snapshot / restore the full mutable state (checkpoint support).
  // Restore expects an advisor built over the same space and options;
  // observations re-enter the history directly (no Observe side effects —
  // subspace counters come from the snapshot instead).
  AdvisorState SaveState() const;
  void RestoreState(const AdvisorState& s);

 private:
  void FitSurrogates(double datasize_hint_gb);

  const ConfigSpace* space_;
  AdvisorOptions options_;
  Rng rng_;
  RunHistory history_;
  SubspaceManager subspace_;
  Agd agd_;
  AcquisitionOptimizer acq_opt_;
  QuasiRandomSampler init_sampler_;

  std::vector<Configuration> warm_start_;
  SurrogateFactory objective_factory_;

  std::unique_ptr<Surrogate> objective_surrogate_;
  std::unique_ptr<Surrogate> runtime_surrogate_;
  // Degradation-ladder bookkeeping: whether each surrogate slot currently
  // holds an unfitted (prior-only) model, and the schema the last fit used
  // (previous-model reuse requires an unchanged schema).
  bool objective_prior_only_ = false;
  bool runtime_prior_only_ = false;
  std::vector<FeatureKind> last_schema_;
  DegradationStats degradation_;

  int suggestions_ = 0;
  // Initial-design suggestions served so far (external observations such as
  // the manual baseline do not consume the init budget or skip warm-start
  // entries).
  size_t init_served_ = 0;
  bool use_time_context_ = false;
  double last_raw_ei_ = 0.0;
  bool last_was_agd_ = false;
  bool last_safe_fallback_ = false;
  bool last_was_initial_ = false;
};

}  // namespace sparktune
