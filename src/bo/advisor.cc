#include "bo/advisor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

namespace sparktune {

namespace {

// Cap the objective values of failed runs so they do not wreck target
// standardization: 1.5x the worst real value seen.
std::vector<double> CappedObjectives(const RunHistory& history) {
  double worst_real = 0.0;
  bool any_real = false;
  for (size_t i = 0; i < history.size(); ++i) {
    if (!history.failed(i) && std::isfinite(history.objective(i))) {
      worst_real = std::max(worst_real, history.objective(i));
      any_real = true;
    }
  }
  double cap = any_real ? worst_real * 1.5 : 1.0;
  std::vector<double> y;
  y.reserve(history.size());
  for (size_t i = 0; i < history.size(); ++i) {
    double v = history.objective(i);
    if (history.failed(i) || !std::isfinite(v) || v > cap) v = cap;
    y.push_back(v);
  }
  return y;
}

// Read-only adapter exposing a log-space surrogate in linear units
// (lognormal moments). Used by AGD, which needs T(x) itself.
class ExpAdapter final : public Surrogate {
 public:
  explicit ExpAdapter(const Surrogate* inner) : inner_(inner) {}
  Status Fit(const std::vector<std::vector<double>>&,
             const std::vector<double>&) override {
    return Status::FailedPrecondition("ExpAdapter is read-only");
  }
  Prediction Predict(const std::vector<double>& x) const override {
    Prediction p = inner_->Predict(x);
    double mean = std::exp(p.mean + 0.5 * p.variance);
    double var = (std::exp(p.variance) - 1.0) * mean * mean;
    return {mean, var};
  }
  std::vector<Prediction> PredictBatch(
      const std::vector<std::vector<double>>& xs) const override {
    std::vector<Prediction> out = inner_->PredictBatch(xs);
    for (Prediction& p : out) {
      double mean = std::exp(p.mean + 0.5 * p.variance);
      double var = (std::exp(p.variance) - 1.0) * mean * mean;
      p = {mean, var};
    }
    return out;
  }
  size_t num_observations() const override {
    return inner_->num_observations();
  }

 private:
  const Surrogate* inner_;
};

}  // namespace

Advisor::Advisor(const ConfigSpace* space, AdvisorOptions options)
    : space_(space),
      options_(std::move(options)),
      rng_(options_.seed),
      subspace_(space, options_.subspace, options_.expert_ranking),
      agd_(space, options_.agd),
      acq_opt_(options_.acq),
      init_sampler_(static_cast<int>(space->size()),
                    options_.seed ^ 0x5bf03635ULL) {
  assert(space_ != nullptr);
  if (!options_.resource_fn) {
    options_.resource_fn = [](const Configuration&) { return 1.0; };
  }
  objective_factory_ = [this](const std::vector<FeatureKind>& schema) {
    return std::make_unique<GaussianProcess>(schema, options_.gp);
  };
}

void Advisor::SetWarmStartConfigs(std::vector<Configuration> configs) {
  warm_start_ = std::move(configs);
}

void Advisor::SetObjectiveSurrogateFactory(SurrogateFactory factory) {
  objective_factory_ = std::move(factory);
}

void Advisor::SeedImportance(const std::vector<double>& scores,
                             double weight) {
  subspace_.SeedImportance(scores, weight);
}

std::vector<FeatureKind> Advisor::Schema() const {
  int context = 0;
  if (options_.datasize_aware) context = use_time_context_ ? 2 : 1;
  return BuildFeatureSchema(*space_, context);
}

std::vector<double> Advisor::Encode(const Configuration& c,
                                    double data_size_gb,
                                    double hours) const {
  std::vector<double> context;
  if (options_.datasize_aware) {
    if (use_time_context_) {
      context = TimeOfDayContext(hours >= 0.0 ? hours : 0.0);
    } else {
      double ds = data_size_gb >= 0.0 ? data_size_gb : 0.0;
      context.push_back(
          NormalizeDataSize(ds, options_.datasize_reference_gb));
    }
  }
  return EncodeFeatures(*space_, c, context);
}

Configuration Advisor::BestConfig() const {
  int best = history_.BestFeasibleIndex();
  return best >= 0 ? history_.config(static_cast<size_t>(best))
                   : space_->Default();
}

void Advisor::ResetForRestart() {
  suggestions_ = 0;
  last_raw_ei_ = 0.0;
  // Keep run history and learned importance: the restart leverages prior
  // knowledge (meta-learning on own history) rather than starting blind.
}

void Advisor::FitSurrogates(double datasize_hint_gb) {
  (void)datasize_hint_gb;
  // Context mode: fall back to time-of-day/day-of-week when no execution
  // exposed its data size but start times are known (paper §3.3).
  if (options_.datasize_aware && options_.time_context_fallback) {
    bool any_ds = false;
    bool any_hours = false;
    for (size_t i = 0; i < history_.size(); ++i) {
      any_ds |= history_.data_size_gb(i) >= 0.0;
      any_hours |= history_.hours(i) >= 0.0;
    }
    use_time_context_ = !any_ds && any_hours;
  }
  std::vector<std::vector<double>> x;
  std::vector<double> y_obj;
  std::vector<double> y_rt;
  x.reserve(history_.size());
  y_rt.reserve(history_.size());
  for (size_t i = 0; i < history_.size(); ++i) {
    x.push_back(Encode(history_.config(i), history_.data_size_gb(i),
                       history_.hours(i)));
    y_rt.push_back(history_.runtime_sec(i));
  }
  y_obj = CappedObjectives(history_);
  if (options_.log_targets) {
    for (auto& v : y_obj) v = std::log(std::max(v, 1e-9));
    for (auto& v : y_rt) v = std::log(std::max(v, 1e-9));
  }

  // Degradation ladder (DESIGN.md §7): a failed fit — e.g. Cholesky
  // exhausting its jitter budget on a near-singular Gram matrix — must not
  // error the tick. Rung 1: keep the previous fitted model when its feature
  // schema still matches. Rung 2: fall back to a prior-only surrogate;
  // Suggest then serves a history-best neighbor instead of trusting a
  // meaningless acquisition landscape.
  auto schema = Schema();
  const bool schema_matches = schema == last_schema_;
  auto fit_one = [&](std::unique_ptr<Surrogate>* slot, bool* prior_only,
                     std::unique_ptr<Surrogate> fresh,
                     const std::vector<double>& y) {
    Status s = fresh->Fit(x, y);
    if (s.ok()) {
      *slot = std::move(fresh);
      *prior_only = false;
      return;
    }
    ++degradation_.fit_failures;
    if (*slot != nullptr && !*prior_only && schema_matches) {
      ++degradation_.previous_model_reuses;
      return;  // keep the previously fitted model
    }
    *slot = std::move(fresh);  // unfitted: predicts the prior
    *prior_only = true;
    ++degradation_.prior_only_fits;
  };
  fit_one(&objective_surrogate_, &objective_prior_only_,
          objective_factory_(schema), y_obj);
  fit_one(&runtime_surrogate_, &runtime_prior_only_,
          std::make_unique<GaussianProcess>(schema, options_.gp), y_rt);
  last_schema_ = std::move(schema);
}

Configuration Advisor::Suggest(double datasize_hint_gb,
                               double hours_hint) {
  ++suggestions_;
  last_was_agd_ = false;
  last_safe_fallback_ = false;
  last_was_initial_ = false;
  last_raw_ei_ = 0.0;

  // ---- Initial design ----
  // With meta warm-starting, the transferred configurations ARE the initial
  // design (paper §5.2) — no additional low-discrepancy samples. The served
  // counter (not the history size) drives the phase, so external
  // observations (e.g. the manual baseline) neither consume the budget nor
  // skip warm-start entries.
  size_t init_budget =
      warm_start_.empty()
          ? static_cast<size_t>(options_.init_samples)
          : std::min(static_cast<size_t>(options_.init_samples),
                     warm_start_.size());
  if (init_served_ < init_budget) {
    size_t served = init_served_++;
    last_was_initial_ = true;
    if (served < warm_start_.size()) {
      return space_->Legalize(warm_start_[served]);
    }
    // Low-discrepancy samples, but never waste an online execution on a
    // configuration that provably violates the white-box resource
    // constraint (runtime feasibility is unknown before a model exists).
    const bool check_resource = options_.enable_safety &&
                                options_.objective.has_resource_constraint();
    // Conservative initial design: with safety on and a feasible anchor
    // already observed (the manual baseline in production), contract the
    // low-discrepancy samples halfway toward the anchor. Keeps diversity
    // for the surrogate while bounding the worst-case exploration cost of
    // the runs no runtime model can vet yet.
    const bool anchored =
        options_.enable_safety && history_.BestFeasibleIndex() >= 0;
    std::vector<double> anchor_u;
    if (anchored) anchor_u = space_->ToUnit(BestConfig());
    Configuration fallback = space_->Default();
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::vector<double> u = init_sampler_.Next();
      if (anchored) {
        for (size_t i = 0; i < u.size(); ++i) {
          u[i] = 0.5 * (u[i] + anchor_u[i]);
        }
      }
      Configuration c = space_->FromUnit(u);
      if (history_.Contains(c)) continue;
      if (check_resource &&
          options_.resource_fn(c) > options_.objective.resource_max) {
        fallback = std::move(c);
        continue;
      }
      return c;
    }
    // Shrink the last rejected sample toward the (feasible) incumbent or
    // default until the resource constraint holds.
    Configuration anchor = BestConfig();
    std::vector<double> u = space_->ToUnit(fallback);
    std::vector<double> a = space_->ToUnit(anchor);
    for (int step = 0; step < 6; ++step) {
      for (size_t i = 0; i < u.size(); ++i) u[i] = 0.5 * (u[i] + a[i]);
      Configuration c = space_->FromUnit(u);
      if (!check_resource ||
          options_.resource_fn(c) <= options_.objective.resource_max) {
        if (!history_.Contains(c)) return c;
      }
    }
    return space_->Sample(&rng_);
  }

  FitSurrogates(datasize_hint_gb);

  Configuration base = BestConfig();

  // Last degradation rung: with no usable objective model at all, an
  // acquisition maximization would chase prior noise. Serve a jittered
  // neighbor of the incumbent (or the default config before any feasible
  // run) and surface it through the counter.
  if (objective_prior_only_) {
    ++degradation_.fallback_suggestions;
    Subspace full = Subspace::Full(space_);
    Configuration c = full.Neighbor(base, 0.05, &rng_);
    if (history_.Contains(c)) c = full.Neighbor(c, 0.05, &rng_);
    return c;
  }
  auto encode = [this, datasize_hint_gb, hours_hint](const Configuration& c) {
    return Encode(c, datasize_hint_gb, hours_hint);
  };

  // ---- AGD branch (Algorithm 2, lines 2-4) ----
  if (options_.enable_agd && history_.BestFeasibleIndex() >= 0 &&
      (static_cast<int>(history_.size()) + 1) % options_.agd.period == 0) {
    last_was_agd_ = true;
    std::unique_ptr<Surrogate> linear_runtime;
    const Surrogate* rt_for_agd = runtime_surrogate_.get();
    if (options_.log_targets) {
      linear_runtime = std::make_unique<ExpAdapter>(runtime_surrogate_.get());
      rt_for_agd = linear_runtime.get();
    }
    Configuration next = agd_.Step(base, *rt_for_agd, encode,
                                   options_.resource_fn, options_.objective);
    // AGD exploits from a feasible incumbent; backtrack the step toward the
    // incumbent if it leaves the (white-box resource, predicted runtime)
    // feasible region. The shrink trajectory is deterministic (the unit
    // coordinates are halved toward the incumbent each round regardless of
    // which candidate wins), so it is precomputed and the predicted-runtime
    // screen runs as one batched surrogate pass over all candidates.
    std::vector<Configuration> traj;
    traj.push_back(next);
    {
      std::vector<double> u = space_->ToUnit(next);
      std::vector<double> a = space_->ToUnit(base);
      for (int shrink = 0; shrink < 5; ++shrink) {
        for (size_t i = 0; i < u.size(); ++i) u[i] = 0.5 * (u[i] + a[i]);
        traj.push_back(space_->FromUnit(u));
      }
    }
    const bool need_runtime = options_.enable_safety &&
                              options_.objective.has_runtime_constraint();
    std::vector<double> upper;
    if (need_runtime) {
      std::vector<std::vector<double>> feats;
      feats.reserve(traj.size());
      for (const Configuration& c : traj) feats.push_back(encode(c));
      std::vector<Prediction> ps = runtime_surrogate_->PredictBatch(feats);
      upper.resize(ps.size());
      for (size_t k = 0; k < ps.size(); ++k) {
        upper[k] = ps[k].mean + options_.safety_gamma *
                                    std::sqrt(std::max(ps[k].variance, 0.0));
      }
    }
    auto step_ok = [&](size_t k) {
      if (!options_.enable_safety) return true;
      if (options_.objective.has_resource_constraint() &&
          options_.resource_fn(traj[k]) > options_.objective.resource_max) {
        return false;
      }
      if (need_runtime) {
        double threshold = options_.log_targets
                               ? std::log(options_.objective.runtime_max)
                               : options_.objective.runtime_max;
        if (upper[k] > threshold) return false;
      }
      return true;
    };
    // First acceptable candidate among the unshrunk step and five shrinks;
    // the fully-shrunk fallback ships unchecked, exactly like the
    // sequential shrink loop it replaces.
    next = traj.back();
    for (size_t k = 0; k + 1 < traj.size(); ++k) {
      if (step_ok(k)) {
        next = traj[k];
        break;
      }
    }
    if (history_.Contains(next)) {
      Subspace full = Subspace::Full(space_);
      next = full.Neighbor(next, 0.03, &rng_);
    }
    return next;
  }

  // ---- BO branch (Algorithm 2, lines 6-8) ----
  // Update importance + sub-space.
  {
    std::vector<std::vector<double>> x_unit;
    std::vector<double> y = CappedObjectives(history_);
    x_unit.reserve(history_.size());
    for (size_t i = 0; i < history_.size(); ++i) {
      x_unit.push_back(space_->ToUnit(history_.config(i)));
    }
    subspace_.MaybeUpdateImportance(x_unit, y);
  }
  Subspace sub = options_.enable_subspace ? subspace_.Current(base)
                                          : Subspace::Full(space_);
  // A second candidate source pins the non-tuned parameters at their
  // defaults instead of the incumbent: a mediocre incumbent then cannot
  // poison the pinned dimensions for the whole run.
  std::optional<Subspace> sub_default;
  if (options_.enable_subspace && !(base == space_->Default())) {
    sub_default.emplace(subspace_.Current(space_->Default()));
  }

  double incumbent = history_.BestObjective();
  if (!std::isfinite(incumbent)) {
    // No feasible point yet: guide by the raw objective values.
    auto y = CappedObjectives(history_);
    incumbent = *std::min_element(y.begin(), y.end());
  }
  if (options_.log_targets) incumbent = std::log(std::max(incumbent, 1e-9));
  const double runtime_threshold =
      options_.log_targets ? std::log(options_.objective.runtime_max)
                           : options_.objective.runtime_max;

  EicAcquisition acq(objective_surrogate_.get(), incumbent);

  ProbabilisticConstraint runtime_constraint;
  const bool use_runtime_constraint =
      options_.enable_eic && options_.objective.has_runtime_constraint();
  if (use_runtime_constraint) {
    runtime_constraint.surrogate = runtime_surrogate_.get();
    runtime_constraint.threshold = runtime_threshold;
    acq.AddConstraint(runtime_constraint);
  }
  const bool use_resource_constraint =
      options_.enable_eic && options_.objective.has_resource_constraint();

  // Deterministic white-box resource check inside the acquisition.
  AcquisitionOptimizer::SafeFn safe;
  AcquisitionOptimizer::UnsafetyFn unsafety;
  AcquisitionOptimizer::SafeBatchFn safe_batch;
  AcquisitionOptimizer::UnsafetyBatchFn unsafety_batch;
  double gamma = options_.safety_gamma;
  if (options_.enable_safety &&
      (use_runtime_constraint || use_resource_constraint)) {
    safe = [&, gamma](const Configuration& c) {
      if (use_resource_constraint &&
          options_.resource_fn(c) > options_.objective.resource_max) {
        return false;
      }
      if (use_runtime_constraint &&
          !runtime_constraint.InSafeRegion(encode(c), gamma)) {
        return false;
      }
      return true;
    };
    unsafety = [&, gamma](const Configuration& c) {
      double worst = 0.0;
      if (use_resource_constraint) {
        worst = std::max(worst,
                         options_.resource_fn(c) /
                                 options_.objective.resource_max -
                             1.0);
      }
      if (use_runtime_constraint) {
        worst = std::max(worst, runtime_constraint.UpperBound(encode(c),
                                                              gamma) /
                                        runtime_threshold -
                                    1.0);
      }
      return worst;
    };
    // Batched screens for the scattered candidate pool: one runtime-
    // surrogate PredictBatch over the pool instead of a Predict per
    // candidate. Element-wise identical to safe/unsafety above.
    safe_batch = [&, gamma](const std::vector<Configuration>& cs) {
      std::vector<char> out(cs.size(), 1);
      if (use_resource_constraint) {
        for (size_t j = 0; j < cs.size(); ++j) {
          if (options_.resource_fn(cs[j]) > options_.objective.resource_max) {
            out[j] = 0;
          }
        }
      }
      if (use_runtime_constraint) {
        std::vector<size_t> idx;
        std::vector<std::vector<double>> feats;
        idx.reserve(cs.size());
        feats.reserve(cs.size());
        for (size_t j = 0; j < cs.size(); ++j) {
          if (!out[j]) continue;
          idx.push_back(j);
          feats.push_back(encode(cs[j]));
        }
        std::vector<double> up =
            runtime_constraint.UpperBoundBatch(feats, gamma);
        for (size_t t = 0; t < idx.size(); ++t) {
          if (up[t] > runtime_constraint.threshold) out[idx[t]] = 0;
        }
      }
      return out;
    };
    unsafety_batch = [&, gamma](const std::vector<Configuration>& cs) {
      std::vector<double> out(cs.size(), 0.0);
      if (use_resource_constraint) {
        for (size_t j = 0; j < cs.size(); ++j) {
          out[j] = std::max(out[j], options_.resource_fn(cs[j]) /
                                            options_.objective.resource_max -
                                        1.0);
        }
      }
      if (use_runtime_constraint) {
        std::vector<std::vector<double>> feats;
        feats.reserve(cs.size());
        for (const Configuration& c : cs) feats.push_back(encode(c));
        std::vector<double> up =
            runtime_constraint.UpperBoundBatch(feats, gamma);
        for (size_t j = 0; j < cs.size(); ++j) {
          out[j] = std::max(out[j], up[j] / runtime_threshold - 1.0);
        }
      }
      return out;
    };
  } else if (use_resource_constraint) {
    // Even without the safety component, hard white-box constraints are
    // honored inside EIC.
    acq.AddDeterministicConstraint(
        [this](const std::vector<double>&) { return true; });
    safe = [&](const Configuration& c) {
      return options_.resource_fn(c) <= options_.objective.resource_max;
    };
  }

  AcqOptResult res =
      acq_opt_.Maximize(sub, encode, acq, safe, unsafety, &history_, &rng_,
                        safe_batch, unsafety_batch);
  if (sub_default.has_value()) {
    AcqOptResult alt =
        acq_opt_.Maximize(*sub_default, encode, acq, safe, unsafety,
                          &history_, &rng_, safe_batch, unsafety_batch);
    if ((res.safe_fallback_used && !alt.safe_fallback_used) ||
        (res.safe_fallback_used == alt.safe_fallback_used &&
         alt.acq_value > res.acq_value)) {
      res = std::move(alt);
    }
  }
  last_raw_ei_ = res.raw_ei;
  last_safe_fallback_ = res.safe_fallback_used;
  return res.config;
}

AdvisorState Advisor::SaveState() const {
  AdvisorState s;
  s.rng = rng_.SaveState();
  s.init_sampler_generated = init_sampler_.num_generated();
  s.subspace = subspace_.SaveState();
  s.observations = history_.observations();
  s.warm_start = warm_start_;
  s.suggestions = suggestions_;
  s.init_served = static_cast<uint64_t>(init_served_);
  s.use_time_context = use_time_context_;
  s.degradation = degradation_;
  return s;
}

void Advisor::RestoreState(const AdvisorState& s) {
  rng_.RestoreState(s.rng);
  // The low-discrepancy sequences are cheap and deterministic: rebuild at
  // the saved cursor by replay instead of serializing generator internals.
  init_sampler_ = QuasiRandomSampler(static_cast<int>(space_->size()),
                                     options_.seed ^ 0x5bf03635ULL);
  init_sampler_.Skip(s.init_sampler_generated);
  subspace_.RestoreState(s.subspace);
  history_.Clear();
  for (const Observation& o : s.observations) history_.Add(o);
  warm_start_ = s.warm_start;
  suggestions_ = s.suggestions;
  init_served_ = static_cast<size_t>(s.init_served);
  use_time_context_ = s.use_time_context;
  degradation_ = s.degradation;
  // Surrogates refit from history on the next Suggest. A previous-model
  // reuse rung cannot span a restart (the old model died with the
  // process); the ladder simply drops to prior-only if the first refit
  // after restore fails too.
  objective_surrogate_.reset();
  runtime_surrogate_.reset();
  objective_prior_only_ = false;
  runtime_prior_only_ = false;
  last_schema_.clear();
}

void Advisor::Observe(Observation obs) {
  double best_before = history_.BestObjective();
  bool improved = !obs.failed() && obs.feasible && obs.objective < best_before;
  history_.Add(std::move(obs));
  // The initial design should not shrink the sub-space.
  if (history_.size() > static_cast<size_t>(options_.init_samples)) {
    subspace_.ReportOutcome(improved);
  }
}

}  // namespace sparktune
