// Acquisition maximization over the candidate region S = safe region ∩
// sub-space (paper §4.2, Algorithm 2 line 8): scattered candidates plus
// hill-climbing local search, with a graceful "least-unsafe" fallback when
// the provably-safe set is empty (expands the safe region at its boundary).
#pragma once

#include <functional>

#include "bo/acquisition.h"
#include "bo/history.h"
#include "common/rng.h"
#include "space/subspace.h"

namespace sparktune {

struct AcqOptOptions {
  int num_candidates = 512;
  int num_local_starts = 6;
  int local_steps = 24;
  double local_sigma = 0.08;
  // Rejected hill-climb candidates (duplicate or unsafe) are re-drawn this
  // many times with annealed sigma before the step is forfeited, so a
  // cramped safe region still gets productive moves.
  int max_rejected_retries = 4;
  // Threads for candidate scoring and the multi-start hill climbs: 1 =
  // serial, 0 = global pool default width, k > 1 = up to k threads. The
  // result is identical at any setting: candidates are generated serially
  // from `rng`, each hill climb runs on its own forked stream, and
  // selection folds in a fixed order.
  int num_threads = 1;
};

struct AcqOptResult {
  Configuration config;
  double acq_value = 0.0;
  // EI of the chosen point without constraint weighting (stopping
  // criterion input).
  double raw_ei = 0.0;
  // True when no candidate was inside the safe region and the
  // least-unsafe fallback was used.
  bool safe_fallback_used = false;
};

class AcquisitionOptimizer {
 public:
  using EncodeFn = std::function<std::vector<double>(const Configuration&)>;
  // Safe-region membership; null = no safety filtering.
  using SafeFn = std::function<bool(const Configuration&)>;
  // Degree of safe-region violation (<= 0 means safe); used to rank
  // fallback candidates.
  using UnsafetyFn = std::function<double(const Configuration&)>;
  // Optional batched counterparts used for the scattered candidate pool
  // (the sequential hill climbs still use the per-point forms). When
  // supplied they must agree bit-for-bit with safe/unsafety per element.
  using SafeBatchFn =
      std::function<std::vector<char>(const std::vector<Configuration>&)>;
  using UnsafetyBatchFn =
      std::function<std::vector<double>(const std::vector<Configuration>&)>;

  explicit AcquisitionOptimizer(AcqOptOptions options = {});

  // Scores the scattered pool with batched surrogate inference (one
  // EicAcquisition::EvalBatch pass, plus one batched safety screen when the
  // batch hooks are given) — identical selection to per-point scoring.
  AcqOptResult Maximize(const Subspace& subspace, const EncodeFn& encode,
                        const EicAcquisition& acq, const SafeFn& safe,
                        const UnsafetyFn& unsafety, const RunHistory* history,
                        Rng* rng, const SafeBatchFn& safe_batch = nullptr,
                        const UnsafetyBatchFn& unsafety_batch = nullptr) const;

 private:
  AcqOptOptions options_;
};

}  // namespace sparktune
