#include "bo/agd.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sparktune {

Agd::Agd(const ConfigSpace* space, AgdOptions options)
    : space_(space), options_(options) {
  assert(space_ != nullptr);
}

Configuration Agd::Step(const Configuration& base,
                        const Surrogate& runtime_surrogate,
                        const EncodeFn& encode, const ResourceFn& resource_fn,
                        const TuningObjective& objective) const {
  std::vector<double> u = space_->ToUnit(base);

  // Gather the incumbent plus all 2d central-difference probes and score
  // them with a single batched surrogate pass (index 0 = base, then the
  // +/- pair of each active numeric dimension).
  struct Probe {
    size_t dim = 0;
    double lo = 0.0;
    double hi = 0.0;
    Configuration cp, cn;
  };
  std::vector<Probe> probes;
  std::vector<std::vector<double>> feats;
  feats.push_back(encode(base));
  for (size_t i = 0; i < u.size(); ++i) {
    if (!space_->param(i).is_numeric()) continue;
    double lo = std::max(0.0, u[i] - options_.fd_epsilon);
    double hi = std::min(1.0, u[i] + options_.fd_epsilon);
    if (hi - lo < 1e-9) continue;
    std::vector<double> up = u, un = u;
    up[i] = hi;
    un[i] = lo;
    Probe p;
    p.dim = i;
    p.lo = lo;
    p.hi = hi;
    p.cp = space_->FromUnit(up);
    p.cn = space_->FromUnit(un);
    feats.push_back(encode(p.cp));
    feats.push_back(encode(p.cn));
    probes.push_back(std::move(p));
  }
  std::vector<Prediction> preds = runtime_surrogate.PredictBatch(feats);

  double t0 = std::max(1e-9, preds[0].mean);
  double r0 = std::max(1e-9, resource_fn(base));
  double f0 = objective.Value(t0, r0);
  double df_dt = objective.DfDt(t0, r0);
  double df_dr = objective.DfDr(t0, r0);

  std::vector<double> grad(u.size(), 0.0);
  for (size_t k = 0; k < probes.size(); ++k) {
    const Probe& p = probes[k];
    double tp = preds[1 + 2 * k].mean;
    double tn = preds[2 + 2 * k].mean;
    double rp = resource_fn(p.cp);
    double rn = resource_fn(p.cn);
    double denom = p.hi - p.lo;
    double dt = (tp - tn) / denom;
    double dr = (rp - rn) / denom;
    // Eq. 9, normalized by the incumbent objective for scale-free steps.
    grad[p.dim] = (df_dt * dt + df_dr * dr) / std::max(f0, 1e-9);
  }

  double eta = options_.learning_rate;
  for (;;) {
    std::vector<double> next = u;
    for (size_t i = 0; i < u.size(); ++i) {
      double step = std::clamp(eta * grad[i], -options_.max_step,
                               options_.max_step);
      next[i] = std::clamp(u[i] - step, 0.0, 1.0);
    }
    Configuration out = space_->FromUnit(next);
    if (!(out == base)) return out;
    // Rounding swallowed the step; amplify until something changes or the
    // step hits the clip.
    bool maxed = true;
    for (size_t i = 0; i < u.size(); ++i) {
      if (grad[i] != 0.0 &&
          std::fabs(eta * grad[i]) < options_.max_step) {
        maxed = false;
        break;
      }
    }
    if (maxed) return out;  // gradient is zero or steps are saturated
    eta *= options_.amplify;
  }
}

}  // namespace sparktune
