// Run history: the observations a tuning task accumulates, one per online
// job execution.
//
// Storage is an SoA/arena layout (DESIGN.md §8 "Memory layout & fleet
// scale"): configuration coordinates live in one contiguous per-history
// slab and the scalar fields in a packed POD row, so a fleet of a million
// task histories costs two heap blocks each instead of one allocation per
// observation. `Observation` remains the interchange type at the API
// boundary — Add() decomposes it, at()/observations() materialize it back.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/failure.h"
#include "space/config_space.h"

namespace sparktune {

struct Observation {
  Configuration config;
  double objective = 0.0;      // f(x) per the tuning objective
  double runtime_sec = 0.0;    // T(x)
  double resource_rate = 0.0;  // R(x)
  double data_size_gb = -1.0;  // <0 if unobservable
  // Hours since the tuning task started, at execution time; feeds the
  // time-of-day/day-of-week context when data size is hidden (<0 = unknown).
  double hours = -1.0;
  double memory_gb_hours = 0.0;
  double cpu_core_hours = 0.0;
  bool feasible = true;        // all constraints satisfied
  // Typed failure taxonomy (common/failure.h). Config-induced failures
  // (kOom/kTimeout) are the advisor's unsafe-config labels; kInfra never
  // reaches the advisor — the service watchdog retries it instead.
  FailureKind failure = FailureKind::kNone;
  // Produced by the watchdog's degraded mode (parked task re-running its
  // incumbent), not by an advisor suggestion.
  bool degraded = false;
  int iteration = 0;

  // Execution failed outright (any kind).
  bool failed() const { return IsFailure(failure); }
  // Failure attributable to the configuration (safety-label eligible).
  bool config_failed() const { return IsConfigFailure(failure); }
};

class RunHistory {
 public:
  void Add(const Observation& obs);
  void Clear();
  // Pre-size the arenas for `n` observations of `dim` coordinates each.
  void Reserve(size_t n, size_t dim);

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  // ---- Indexed column accessors (zero-copy; the hot-path API) ----
  double objective(size_t i) const { return rows_[i].objective; }
  double runtime_sec(size_t i) const { return rows_[i].runtime_sec; }
  double resource_rate(size_t i) const { return rows_[i].resource_rate; }
  double data_size_gb(size_t i) const { return rows_[i].data_size_gb; }
  double hours(size_t i) const { return rows_[i].hours; }
  double memory_gb_hours(size_t i) const { return rows_[i].memory_gb_hours; }
  double cpu_core_hours(size_t i) const { return rows_[i].cpu_core_hours; }
  int iteration(size_t i) const { return rows_[i].iteration; }
  bool feasible(size_t i) const { return (rows_[i].flags & kFeasible) != 0; }
  bool degraded(size_t i) const { return (rows_[i].flags & kDegraded) != 0; }
  FailureKind failure(size_t i) const {
    return static_cast<FailureKind>(rows_[i].failure);
  }
  bool failed(size_t i) const { return IsFailure(failure(i)); }
  bool config_failed(size_t i) const {
    return IsConfigFailure(failure(i));
  }
  // Configuration coordinates of observation `i`, in place in the arena.
  const double* config_data(size_t i) const {
    return configs_.data() + offsets_[i];
  }
  size_t config_size(size_t i) const {
    return offsets_[i + 1] - offsets_[i];
  }
  // Materializes a Configuration (heap-allocating); prefer config_data()
  // in loops that only read coordinates.
  Configuration config(size_t i) const;

  // ---- Materializing accessors (the compatibility API) ----
  // All return by value: there is no stored Observation to reference.
  Observation at(size_t i) const;
  Observation back() const { return at(size() - 1); }
  // Snapshot of the whole history as interchange structs. Cold-path only
  // (serialization, checkpointing, report printing).
  std::vector<Observation> observations() const;

  // Index of the best feasible non-failed observation; -1 if none.
  int BestFeasibleIndex() const;
  std::optional<Observation> BestFeasible() const;
  // Incumbent objective value (+inf when no feasible observation).
  double BestObjective() const;

  // True if `config` was already evaluated (exact value match). O(1): a
  // hash bucket lookup plus exact comparison of the (rare) bucket entries —
  // the acquisition optimizer calls this once per candidate, which used to
  // cost O(pool x history) per iteration as an exact-double scan.
  bool Contains(const Configuration& config) const;

  // Distinct index entries stored for `config`'s hash bucket (diagnostics:
  // repeated Adds of one config must keep this at 1, not grow per
  // duplicate observation).
  size_t IndexEntries(const Configuration& config) const;

  // Heap bytes held by the arenas and the config index (diagnostics for
  // fleet-scale memory accounting).
  size_t HeapBytes() const;

 private:
  // Packed scalar plane of one observation; the config coordinates live in
  // the shared arena. Keep this POD and pointer-free.
  struct Row {
    double objective;
    double runtime_sec;
    double resource_rate;
    double data_size_gb;
    double hours;
    double memory_gb_hours;
    double cpu_core_hours;
    int32_t iteration;
    uint8_t failure;  // FailureKind
    uint8_t flags;    // kFeasible | kDegraded
  };
  static constexpr uint8_t kFeasible = 1;
  static constexpr uint8_t kDegraded = 2;

  // Hash of the configuration values' bit patterns (-0.0 canonicalized to
  // +0.0 so hashing agrees with operator==). Collisions are resolved by
  // exact comparison, so semantics match the old linear scan.
  static uint64_t ConfigKey(const Configuration& config);
  // Exact element-wise comparison of stored config `i` against `config`
  // (same semantics as Configuration::operator==: NaN never matches,
  // -0.0 == 0.0).
  bool ConfigEquals(size_t i, const Configuration& config) const;

  std::vector<double> configs_;     // coordinate arena, rows back to back
  std::vector<uint64_t> offsets_;   // size()+1 entries; row i spans
                                    // [offsets_[i], offsets_[i+1])
  std::vector<Row> rows_;
  // Only iterated to sum per-bucket heap bytes (HeapBytes), an
  // order-independent integer reduction; lookups never see hash order.
  // lint:allow(unordered-member-iter) HeapBytes is an order-independent sum
  std::unordered_map<uint64_t, std::vector<uint32_t>> config_index_;
};

}  // namespace sparktune
