// Run history: the observations a tuning task accumulates, one per online
// job execution.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/failure.h"
#include "space/config_space.h"

namespace sparktune {

struct Observation {
  Configuration config;
  double objective = 0.0;      // f(x) per the tuning objective
  double runtime_sec = 0.0;    // T(x)
  double resource_rate = 0.0;  // R(x)
  double data_size_gb = -1.0;  // <0 if unobservable
  // Hours since the tuning task started, at execution time; feeds the
  // time-of-day/day-of-week context when data size is hidden (<0 = unknown).
  double hours = -1.0;
  double memory_gb_hours = 0.0;
  double cpu_core_hours = 0.0;
  bool feasible = true;        // all constraints satisfied
  // Typed failure taxonomy (common/failure.h). Config-induced failures
  // (kOom/kTimeout) are the advisor's unsafe-config labels; kInfra never
  // reaches the advisor — the service watchdog retries it instead.
  FailureKind failure = FailureKind::kNone;
  // Produced by the watchdog's degraded mode (parked task re-running its
  // incumbent), not by an advisor suggestion.
  bool degraded = false;
  int iteration = 0;

  // Execution failed outright (any kind).
  bool failed() const { return IsFailure(failure); }
  // Failure attributable to the configuration (safety-label eligible).
  bool config_failed() const { return IsConfigFailure(failure); }
};

class RunHistory {
 public:
  void Add(Observation obs) {
    config_index_[ConfigKey(obs.config)].push_back(
        static_cast<uint32_t>(observations_.size()));
    observations_.push_back(std::move(obs));
  }
  void Clear() {
    observations_.clear();
    config_index_.clear();
  }

  size_t size() const { return observations_.size(); }
  bool empty() const { return observations_.empty(); }
  const std::vector<Observation>& observations() const {
    return observations_;
  }
  const Observation& at(size_t i) const { return observations_[i]; }
  const Observation& back() const { return observations_.back(); }

  // Index of the best feasible non-failed observation; -1 if none.
  int BestFeasibleIndex() const;
  const Observation* BestFeasible() const;
  // Incumbent objective value (+inf when no feasible observation).
  double BestObjective() const;

  // True if `config` was already evaluated (exact value match). O(1): a
  // hash bucket lookup plus exact comparison of the (rare) bucket entries —
  // the acquisition optimizer calls this once per candidate, which used to
  // cost O(pool x history) per iteration as an exact-double scan.
  bool Contains(const Configuration& config) const;

 private:
  // Hash of the configuration values' bit patterns (-0.0 canonicalized to
  // +0.0 so hashing agrees with operator==). Collisions are resolved by
  // exact comparison, so semantics match the old linear scan.
  static uint64_t ConfigKey(const Configuration& config);

  std::vector<Observation> observations_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> config_index_;
};

}  // namespace sparktune
