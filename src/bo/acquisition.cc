#include "bo/acquisition.h"

#include <cassert>
#include <cmath>

#include "common/normal.h"

namespace sparktune {

double ExpectedImprovement(double mean, double variance, double best) {
  double sigma = std::sqrt(std::max(variance, 0.0));
  if (sigma < 1e-12) {
    return best > mean ? best - mean : 0.0;
  }
  double gamma = (best - mean) / sigma;
  return sigma * (gamma * NormCdf(gamma) + NormPdf(gamma));
}

double ProbabilityBelow(double mean, double variance, double threshold) {
  double sigma = std::sqrt(std::max(variance, 0.0));
  if (sigma < 1e-12) return mean <= threshold ? 1.0 : 0.0;
  return NormCdf((threshold - mean) / sigma);
}

double ProbabilisticConstraint::SatisfactionProbability(
    const std::vector<double>& features) const {
  assert(surrogate != nullptr);
  Prediction p = surrogate->Predict(features);
  return ProbabilityBelow(p.mean, p.variance, threshold);
}

std::vector<double> ProbabilisticConstraint::SatisfactionProbabilityBatch(
    const std::vector<std::vector<double>>& xs) const {
  assert(surrogate != nullptr);
  std::vector<Prediction> preds = surrogate->PredictBatch(xs);
  std::vector<double> out(xs.size());
  for (size_t j = 0; j < xs.size(); ++j) {
    out[j] = ProbabilityBelow(preds[j].mean, preds[j].variance, threshold);
  }
  return out;
}

double ProbabilisticConstraint::UpperBound(const std::vector<double>& features,
                                           double gamma) const {
  assert(surrogate != nullptr);
  Prediction p = surrogate->Predict(features);
  return p.mean + gamma * std::sqrt(std::max(p.variance, 0.0));
}

std::vector<double> ProbabilisticConstraint::UpperBoundBatch(
    const std::vector<std::vector<double>>& xs, double gamma) const {
  assert(surrogate != nullptr);
  std::vector<Prediction> preds = surrogate->PredictBatch(xs);
  std::vector<double> out(xs.size());
  for (size_t j = 0; j < xs.size(); ++j) {
    out[j] =
        preds[j].mean + gamma * std::sqrt(std::max(preds[j].variance, 0.0));
  }
  return out;
}

bool ProbabilisticConstraint::InSafeRegion(const std::vector<double>& features,
                                           double gamma) const {
  return UpperBound(features, gamma) <= threshold;
}

EicAcquisition::EicAcquisition(const Surrogate* objective_surrogate,
                               double incumbent)
    : objective_(objective_surrogate), incumbent_(incumbent) {
  assert(objective_ != nullptr);
}

double EicAcquisition::RawEi(const std::vector<double>& features) const {
  Prediction p = objective_->Predict(features);
  return ExpectedImprovement(p.mean, p.variance, incumbent_);
}

double EicAcquisition::Eval(const std::vector<double>& features) const {
  for (const auto& fn : deterministic_) {
    if (!fn(features)) return 0.0;
  }
  double acq = RawEi(features);
  if (acq <= 0.0) return 0.0;
  for (const auto& c : constraints_) {
    acq *= c.SatisfactionProbability(features);
  }
  return acq;
}

std::vector<double> EicAcquisition::RawEiBatch(
    const std::vector<std::vector<double>>& xs) const {
  std::vector<Prediction> preds = objective_->PredictBatch(xs);
  std::vector<double> out(xs.size());
  for (size_t j = 0; j < xs.size(); ++j) {
    out[j] = ExpectedImprovement(preds[j].mean, preds[j].variance, incumbent_);
  }
  return out;
}

std::vector<double> EicAcquisition::EvalBatch(
    const std::vector<std::vector<double>>& xs) const {
  std::vector<double> out(xs.size(), 0.0);
  if (xs.empty()) return out;
  // Deterministic screen first (cheap, exact), mirroring Eval's
  // short-circuit order per candidate.
  std::vector<size_t> live;
  live.reserve(xs.size());
  for (size_t j = 0; j < xs.size(); ++j) {
    bool ok = true;
    for (const auto& fn : deterministic_) {
      if (!fn(xs[j])) {
        ok = false;
        break;
      }
    }
    if (ok) live.push_back(j);
  }
  if (live.empty()) return out;
  std::vector<std::vector<double>> live_x;
  live_x.reserve(live.size());
  for (size_t j : live) live_x.push_back(xs[j]);
  std::vector<double> ei = RawEiBatch(live_x);
  // Constraint surrogates only score candidates with positive EI (Eval
  // never reaches the constraint product otherwise).
  std::vector<size_t> pos;
  std::vector<std::vector<double>> pos_x;
  for (size_t t = 0; t < live.size(); ++t) {
    if (ei[t] > 0.0) {
      out[live[t]] = ei[t];
      pos.push_back(live[t]);
      pos_x.push_back(std::move(live_x[t]));
    }
  }
  if (pos.empty()) return out;
  for (const auto& c : constraints_) {
    std::vector<double> probs = c.SatisfactionProbabilityBatch(pos_x);
    for (size_t t = 0; t < pos.size(); ++t) out[pos[t]] *= probs[t];
  }
  return out;
}

}  // namespace sparktune
