#include "bo/acquisition.h"

#include <cassert>
#include <cmath>

#include "common/normal.h"

namespace sparktune {

double ExpectedImprovement(double mean, double variance, double best) {
  double sigma = std::sqrt(std::max(variance, 0.0));
  if (sigma < 1e-12) {
    return best > mean ? best - mean : 0.0;
  }
  double gamma = (best - mean) / sigma;
  return sigma * (gamma * NormCdf(gamma) + NormPdf(gamma));
}

double ProbabilityBelow(double mean, double variance, double threshold) {
  double sigma = std::sqrt(std::max(variance, 0.0));
  if (sigma < 1e-12) return mean <= threshold ? 1.0 : 0.0;
  return NormCdf((threshold - mean) / sigma);
}

double ProbabilisticConstraint::SatisfactionProbability(
    const std::vector<double>& features) const {
  assert(surrogate != nullptr);
  Prediction p = surrogate->Predict(features);
  return ProbabilityBelow(p.mean, p.variance, threshold);
}

double ProbabilisticConstraint::UpperBound(const std::vector<double>& features,
                                           double gamma) const {
  assert(surrogate != nullptr);
  Prediction p = surrogate->Predict(features);
  return p.mean + gamma * std::sqrt(std::max(p.variance, 0.0));
}

bool ProbabilisticConstraint::InSafeRegion(const std::vector<double>& features,
                                           double gamma) const {
  return UpperBound(features, gamma) <= threshold;
}

EicAcquisition::EicAcquisition(const Surrogate* objective_surrogate,
                               double incumbent)
    : objective_(objective_surrogate), incumbent_(incumbent) {
  assert(objective_ != nullptr);
}

double EicAcquisition::RawEi(const std::vector<double>& features) const {
  Prediction p = objective_->Predict(features);
  return ExpectedImprovement(p.mean, p.variance, incumbent_);
}

double EicAcquisition::Eval(const std::vector<double>& features) const {
  for (const auto& fn : deterministic_) {
    if (!fn(features)) return 0.0;
  }
  double acq = RawEi(features);
  if (acq <= 0.0) return 0.0;
  for (const auto& c : constraints_) {
    acq *= c.SatisfactionProbability(features);
  }
  return acq;
}

}  // namespace sparktune
