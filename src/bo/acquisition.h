// Acquisition functions (paper §3.3 Eq. 3, §4.2 Eq. 6-8): Expected
// Improvement, EI with Constraints, and the safe-region upper bound test.
#pragma once

#include <functional>
#include <vector>

#include "model/surrogate.h"

namespace sparktune {

// Closed-form EI for minimization: E[max(best - y, 0)] under
// y ~ N(mean, variance).
double ExpectedImprovement(double mean, double variance, double best);

// Pr[g(x) <= threshold] under g ~ N(mean, variance).
double ProbabilityBelow(double mean, double variance, double threshold);

// One probabilistic inequality constraint g(x) <= threshold, with g modeled
// by a surrogate over the same feature encoding as the objective.
struct ProbabilisticConstraint {
  const Surrogate* surrogate = nullptr;
  double threshold = 0.0;

  double SatisfactionProbability(const std::vector<double>& features) const;
  // One surrogate PredictBatch for the whole pool; out[i] equals
  // SatisfactionProbability(xs[i]) bit-for-bit.
  std::vector<double> SatisfactionProbabilityBatch(
      const std::vector<std::vector<double>>& xs) const;

  // Safe-region membership (Eq. 8): mu(x) + gamma * sigma(x) <= threshold.
  bool InSafeRegion(const std::vector<double>& features, double gamma) const;
  // The upper bound u(x) itself (for "least unsafe" fallbacks).
  double UpperBound(const std::vector<double>& features, double gamma) const;
  // Batched upper bounds; out[i] == UpperBound(xs[i], gamma) bit-for-bit.
  std::vector<double> UpperBoundBatch(
      const std::vector<std::vector<double>>& xs, double gamma) const;
};

// EIC acquisition (Eq. 6): EI(x) * prod_i Pr[constraint_i satisfied] *
// prod_j [deterministic constraint_j satisfied].
class EicAcquisition {
 public:
  EicAcquisition(const Surrogate* objective_surrogate, double incumbent);

  void AddConstraint(ProbabilisticConstraint c) {
    constraints_.push_back(c);
  }
  // Exact white-box constraint (e.g. resource function): returns true when
  // satisfied.
  void AddDeterministicConstraint(
      std::function<bool(const std::vector<double>&)> fn) {
    deterministic_.push_back(std::move(fn));
  }

  double Eval(const std::vector<double>& features) const;
  // EI alone (no constraint weighting), for the stopping criterion.
  double RawEi(const std::vector<double>& features) const;

  // Batched evaluation over a candidate pool: one objective PredictBatch,
  // then one constraint-surrogate PredictBatch per constraint restricted to
  // candidates that survive the deterministic screen and have EI > 0.
  // out[i] == Eval(xs[i]) bit-for-bit.
  std::vector<double> EvalBatch(
      const std::vector<std::vector<double>>& xs) const;
  // Batched RawEi; out[i] == RawEi(xs[i]) bit-for-bit.
  std::vector<double> RawEiBatch(
      const std::vector<std::vector<double>>& xs) const;

  const std::vector<ProbabilisticConstraint>& constraints() const {
    return constraints_;
  }

 private:
  const Surrogate* objective_;
  double incumbent_;
  std::vector<ProbabilisticConstraint> constraints_;
  std::vector<std::function<bool(const std::vector<double>&)>> deterministic_;
};

}  // namespace sparktune
