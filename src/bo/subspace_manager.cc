#include "bo/subspace_manager.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace sparktune {

SubspaceManager::SubspaceManager(const ConfigSpace* space,
                                 SubspaceOptions options,
                                 const std::vector<std::string>& expert_ranking)
    : space_(space), options_(options) {
  assert(space_ != nullptr);
  int n = static_cast<int>(space_->size());
  if (options_.k_max <= 0) options_.k_max = n;
  options_.k_max = std::min(options_.k_max, n);
  options_.k_min = std::clamp(options_.k_min, 1, options_.k_max);
  k_ = std::clamp(options_.k_init, options_.k_min, options_.k_max);

  // Seed importance from the expert ranking: exponentially decaying scores.
  importance_.assign(static_cast<size_t>(n), 0.0);
  double score = 1.0;
  int matched = 0;
  for (const std::string& name : expert_ranking) {
    int idx = space_->IndexOf(name);
    if (idx < 0) continue;
    importance_[static_cast<size_t>(idx)] = score;
    score *= 0.85;
    ++matched;
  }
  // Unranked parameters share the tail score.
  for (auto& v : importance_) {
    if (v == 0.0 && matched > 0) v = score * 0.5;
  }
  importance_weight_ = matched > 0 ? 1.0 : 0.0;
}

void SubspaceManager::ReportOutcome(bool improved) {
  if (improved) {
    ++succ_count_;
    fail_count_ = 0;
    if (succ_count_ >= options_.tau_succ) {
      k_ = std::min(options_.k_max, k_ + options_.k_step);
      succ_count_ = 0;
      fail_count_ = 0;
    }
  } else {
    ++fail_count_;
    succ_count_ = 0;
    if (fail_count_ >= options_.tau_fail) {
      k_ = std::max(options_.k_min, k_ - options_.k_step);
      succ_count_ = 0;
      fail_count_ = 0;
    }
  }
}

void SubspaceManager::MaybeUpdateImportance(
    const std::vector<std::vector<double>>& x_unit,
    const std::vector<double>& y) {
  if (x_unit.size() < static_cast<size_t>(options_.fanova_min_obs)) return;
  if (x_unit.size() <
      last_fanova_size_ + static_cast<size_t>(options_.fanova_period)) {
    return;
  }
  // Pairwise interactions on the full 30-d space are expensive; restrict to
  // main effects for the online update (combined scores still fold in
  // interactions when dimensionality is modest).
  FanovaOptions fopts = options_.fanova;
  fopts.compute_pairwise = x_unit[0].size() <= 12;
  fopts.forest.num_threads = options_.num_threads;
  auto result = Fanova::Analyze(x_unit, y, fopts);
  if (!result.ok()) return;
  last_fanova_size_ = x_unit.size();
  ++num_updates_;
  std::vector<double> combined = result->CombinedImportance();
  SeedImportance(combined, 1.0);
}

void SubspaceManager::SeedImportance(const std::vector<double>& scores,
                                     double weight) {
  assert(scores.size() == importance_.size());
  double total = importance_weight_ + weight;
  for (size_t i = 0; i < importance_.size(); ++i) {
    importance_[i] =
        (importance_[i] * importance_weight_ + scores[i] * weight) / total;
  }
  importance_weight_ = total;
}

std::vector<int> SubspaceManager::Ranking() const {
  std::vector<int> order(importance_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return importance_[static_cast<size_t>(a)] >
           importance_[static_cast<size_t>(b)];
  });
  return order;
}

Subspace SubspaceManager::Current(const Configuration& base) const {
  std::vector<int> order = Ranking();
  order.resize(static_cast<size_t>(std::min<int>(k_, static_cast<int>(order.size()))));
  return Subspace(space_, std::move(order), base);
}

SubspaceState SubspaceManager::SaveState() const {
  SubspaceState s;
  s.k = k_;
  s.succ_count = succ_count_;
  s.fail_count = fail_count_;
  s.importance = importance_;
  s.importance_weight = importance_weight_;
  s.num_updates = num_updates_;
  s.last_fanova_size = static_cast<uint64_t>(last_fanova_size_);
  return s;
}

void SubspaceManager::RestoreState(const SubspaceState& s) {
  k_ = s.k;
  succ_count_ = s.succ_count;
  fail_count_ = s.fail_count;
  importance_ = s.importance;
  importance_weight_ = s.importance_weight;
  num_updates_ = s.num_updates;
  last_fanova_size_ = static_cast<size_t>(s.last_fanova_size);
}

}  // namespace sparktune

