// Adaptive sub-space generation (paper §4.1): rank parameters by fANOVA
// importance (averaged over analyses, seeded by an expert ranking before
// any history exists) and adapt the sub-space size K TuRBO-style — grow
// after tau_succ consecutive improvements, shrink after tau_fail consecutive
// failures.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "fanova/fanova.h"
#include "space/subspace.h"

namespace sparktune {

struct SubspaceOptions {
  int k_init = 10;
  int k_min = 4;
  int k_max = -1;  // -1 = number of parameters
  int tau_succ = 3;
  int tau_fail = 5;
  int k_step = 2;
  // Re-run fANOVA every this many new observations (and only once at least
  // `fanova_min_obs` are available).
  int fanova_period = 5;
  int fanova_min_obs = 8;
  FanovaOptions fanova;
  // Threads for the internal fANOVA forest fit + variance decomposition:
  // 1 = serial, 0 = global pool default width, k > 1 = up to k threads.
  // Overrides fanova.forest.num_threads; bit-identical at any setting.
  int num_threads = 1;
};

// Serialized mutable state of a SubspaceManager (checkpoint payload). The
// space pointer and options are reconstructed from configuration, not saved.
struct SubspaceState {
  int k = 0;
  int succ_count = 0;
  int fail_count = 0;
  std::vector<double> importance;
  double importance_weight = 0.0;
  int num_updates = 0;
  uint64_t last_fanova_size = 0;
};

class SubspaceManager {
 public:
  // `expert_ranking`: parameter names, most important first; names not in
  // `space` are ignored, parameters missing from the ranking go last.
  SubspaceManager(const ConfigSpace* space, SubspaceOptions options,
                  const std::vector<std::string>& expert_ranking);

  // Report the outcome of an evaluated suggestion: did it improve on the
  // incumbent? Adjusts K and resets counters on a size change.
  void ReportOutcome(bool improved);

  // Feed tuning history (unit-cube configs + objective) through fANOVA and
  // fold the resulting importance into the running average. No-op until
  // enough observations accumulated / period elapsed.
  void MaybeUpdateImportance(const std::vector<std::vector<double>>& x_unit,
                             const std::vector<double>& y);

  // Seed importance scores from another task (meta-learning hook); `scores`
  // indexed like the space.
  void SeedImportance(const std::vector<double>& scores, double weight = 1.0);

  // Current sub-space: top-K parameters by importance, remaining pinned to
  // `base`.
  Subspace Current(const Configuration& base) const;

  // Snapshot / restore the mutable state (checkpoint support). Restore
  // expects a manager built over the same space and options.
  SubspaceState SaveState() const;
  void RestoreState(const SubspaceState& s);

  int K() const { return k_; }
  // Importance-sorted parameter indices (most important first).
  std::vector<int> Ranking() const;
  const std::vector<double>& importance() const { return importance_; }
  int num_fanova_updates() const { return num_updates_; }

 private:
  const ConfigSpace* space_;
  SubspaceOptions options_;
  int k_;
  int succ_count_ = 0;
  int fail_count_ = 0;
  std::vector<double> importance_;   // running average score per parameter
  double importance_weight_ = 0.0;   // total weight folded in so far
  int num_updates_ = 0;
  size_t last_fanova_size_ = 0;
};

}  // namespace sparktune
