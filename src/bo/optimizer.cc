#include "bo/optimizer.h"

#include <cmath>

namespace sparktune {

namespace {

AdvisorOptions BuildAdvisorOptions(const OptimizerOptions& options) {
  AdvisorOptions aopts = options.advisor;
  aopts.objective.beta = options.resource_fn ? options.beta : 1.0;
  aopts.objective.runtime_max = options.safety_bound;
  aopts.objective.resource_max = options.resource_bound;
  aopts.resource_fn = options.resource_fn;  // may be null -> constant 1
  aopts.seed = options.seed;
  // Generic problems carry no data-size context.
  aopts.datasize_aware = false;
  return aopts;
}

}  // namespace

Optimizer::Optimizer(const ConfigSpace* space, OptimizerOptions options)
    : space_(space),
      options_(std::move(options)),
      advisor_(space, BuildAdvisorOptions(options_)) {
  objective_ = advisor_.options().objective;
}

Configuration Optimizer::Suggest() { return advisor_.Suggest(); }

void Optimizer::Observe(const Configuration& config, double value) {
  Observation obs;
  obs.config = space_->Legalize(config);
  obs.iteration = ++iteration_;
  // A non-finite value means the evaluation blew up under this
  // configuration — a config-induced failure, so it is safety-label
  // eligible (infra faults never reach Observe; the watchdog owns those).
  obs.failure =
      std::isfinite(value) ? FailureKind::kNone : FailureKind::kOom;
  double runtime = value;
  if (obs.failed()) {
    // A failed evaluation must look *bad* to the value surrogate, not fast:
    // pin it above everything observed (or the safety bound when set).
    double worst = std::isfinite(options_.safety_bound)
                       ? options_.safety_bound
                       : 1.0;
    const RunHistory& h = advisor_.history();
    for (size_t i = 0; i < h.size(); ++i) {
      if (!h.failed(i)) worst = std::max(worst, h.runtime_sec(i));
    }
    runtime = worst * 2.0;
  }
  double resource =
      options_.resource_fn ? options_.resource_fn(obs.config) : 1.0;
  obs.runtime_sec = runtime;
  obs.resource_rate = resource;
  obs.objective =
      obs.failed() ? std::numeric_limits<double>::infinity()
                   : objective_.Value(runtime, resource);
  obs.feasible = !obs.failed() && objective_.Feasible(runtime, resource);
  advisor_.Observe(std::move(obs));
}

OptimizerReport Optimizer::Minimize(const ObjectiveFn& fn) {
  OptimizerReport report;
  for (int i = 0; i < options_.budget; ++i) {
    Configuration c = Suggest();
    double value = fn(c);
    Observe(c, value);
    ++report.evaluations;
    if (std::isfinite(value) && value > options_.safety_bound) {
      ++report.violations;
    }
  }
  const RunHistory& h = advisor_.history();
  int best = h.BestFeasibleIndex();
  if (best >= 0) {
    report.best_config = h.config(static_cast<size_t>(best));
    report.best_value = h.runtime_sec(static_cast<size_t>(best));
  } else if (!h.empty()) {
    // Nothing feasible: return the smallest observed value anyway.
    double best_val = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < h.size(); ++i) {
      if (!h.failed(i) && h.runtime_sec(i) < best_val) {
        best_val = h.runtime_sec(i);
        report.best_config = h.config(i);
        report.best_value = best_val;
      }
    }
  }
  return report;
}

}  // namespace sparktune
