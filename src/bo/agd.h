// Approximate gradient descent within BO (paper §4.3, Eq. 9-11): every
// N_AGD iterations the next configuration is produced by a gradient step
// from the incumbent, with dT/dx estimated by central differences on the
// runtime surrogate and dR/dx taken from the white-box resource function.
//
// Gradients are computed in normalized unit-cube coordinates and the
// objective derivative is scaled by 1/f(incumbent), making the learning
// rate eta scale-free across tasks (the paper applies eta on raw parameter
// values; normalized coordinates are the equivalent for our mixed space).
// Categorical/bool parameters have no derivative and are held fixed.
#pragma once

#include <functional>

#include "model/surrogate.h"
#include "space/config_space.h"
#include "tuner/objective.h"

namespace sparktune {

struct AgdOptions {
  int period = 5;              // N_AGD: AGD replaces BO every `period` iters
  double learning_rate = 0.05; // eta on the normalized gradient
  double fd_epsilon = 0.03;    // central-difference half step (unit space)
  double max_step = 0.15;      // per-dimension step clip (unit space)
  // If rounding leaves the configuration unchanged, the step is amplified
  // by this factor until something moves (or max_step is hit).
  double amplify = 2.0;
};

class Agd {
 public:
  using EncodeFn = std::function<std::vector<double>(const Configuration&)>;
  using ResourceFn = std::function<double(const Configuration&)>;

  Agd(const ConfigSpace* space, AgdOptions options = {});

  // One AGD step (Eq. 11) from `base` using runtime surrogate predictions
  // and the exact resource function. The incumbent and all 2d central-
  // difference probes are scored in one PredictBatch call. Returns a
  // legalized configuration differing from `base` whenever any numeric
  // parameter has nonzero gradient.
  Configuration Step(const Configuration& base,
                     const Surrogate& runtime_surrogate,
                     const EncodeFn& encode, const ResourceFn& resource_fn,
                     const TuningObjective& objective) const;

  const AgdOptions& options() const { return options_; }

 private:
  const ConfigSpace* space_;
  AgdOptions options_;
};

}  // namespace sparktune
