#include "bo/history.h"

#include <cstring>

namespace sparktune {

void RunHistory::Add(const Observation& obs) {
  if (offsets_.empty()) offsets_.push_back(0);
  const uint32_t idx = static_cast<uint32_t>(rows_.size());

  // Config-index maintenance: one entry per *distinct* configuration.
  // Repeated evaluations of the same config (degraded replays, applied
  // phase) must not grow the bucket, or Contains() degrades from O(1) to
  // O(duplicates) per lookup. NaN coordinates never compare equal, so NaN
  // configs still append — Contains() can never match them anyway.
  std::vector<uint32_t>& bucket = config_index_[ConfigKey(obs.config)];
  bool already_indexed = false;
  for (uint32_t j : bucket) {
    if (ConfigEquals(j, obs.config)) {
      already_indexed = true;
      break;
    }
  }
  if (!already_indexed) bucket.push_back(idx);

  configs_.insert(configs_.end(), obs.config.values().begin(),
                  obs.config.values().end());
  offsets_.push_back(configs_.size());

  Row row;
  row.objective = obs.objective;
  row.runtime_sec = obs.runtime_sec;
  row.resource_rate = obs.resource_rate;
  row.data_size_gb = obs.data_size_gb;
  row.hours = obs.hours;
  row.memory_gb_hours = obs.memory_gb_hours;
  row.cpu_core_hours = obs.cpu_core_hours;
  row.iteration = obs.iteration;
  row.failure = static_cast<uint8_t>(obs.failure);
  row.flags = static_cast<uint8_t>((obs.feasible ? kFeasible : 0) |
                                   (obs.degraded ? kDegraded : 0));
  rows_.push_back(row);
}

void RunHistory::Clear() {
  configs_.clear();
  offsets_.clear();
  rows_.clear();
  config_index_.clear();
}

void RunHistory::Reserve(size_t n, size_t dim) {
  configs_.reserve(n * dim);
  offsets_.reserve(n + 1);
  rows_.reserve(n);
  config_index_.reserve(n);
}

Configuration RunHistory::config(size_t i) const {
  return Configuration(std::vector<double>(
      config_data(i), config_data(i) + config_size(i)));
}

Observation RunHistory::at(size_t i) const {
  const Row& row = rows_[i];
  Observation obs;
  obs.config = config(i);
  obs.objective = row.objective;
  obs.runtime_sec = row.runtime_sec;
  obs.resource_rate = row.resource_rate;
  obs.data_size_gb = row.data_size_gb;
  obs.hours = row.hours;
  obs.memory_gb_hours = row.memory_gb_hours;
  obs.cpu_core_hours = row.cpu_core_hours;
  obs.iteration = row.iteration;
  obs.failure = static_cast<FailureKind>(row.failure);
  obs.feasible = (row.flags & kFeasible) != 0;
  obs.degraded = (row.flags & kDegraded) != 0;
  return obs;
}

std::vector<Observation> RunHistory::observations() const {
  std::vector<Observation> out;
  out.reserve(size());
  for (size_t i = 0; i < size(); ++i) out.push_back(at(i));
  return out;
}

int RunHistory::BestFeasibleIndex() const {
  int best = -1;
  double best_obj = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (failed(i) || !feasible(i)) continue;
    if (rows_[i].objective < best_obj) {
      best_obj = rows_[i].objective;
      best = static_cast<int>(i);
    }
  }
  return best;
}

std::optional<Observation> RunHistory::BestFeasible() const {
  int i = BestFeasibleIndex();
  if (i < 0) return std::nullopt;
  return at(static_cast<size_t>(i));
}

double RunHistory::BestObjective() const {
  int i = BestFeasibleIndex();
  return i < 0 ? std::numeric_limits<double>::infinity()
               : rows_[static_cast<size_t>(i)].objective;
}

uint64_t RunHistory::ConfigKey(const Configuration& config) {
  // FNV-1a over the value bit patterns.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (double v : config.values()) {
    if (v == 0.0) v = 0.0;  // -0.0 == 0.0 must hash identically
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (bits >> shift) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  }
  h ^= config.size();
  return h;
}

bool RunHistory::ConfigEquals(size_t i, const Configuration& config) const {
  if (config_size(i) != config.size()) return false;
  const double* stored = config_data(i);
  for (size_t k = 0; k < config.size(); ++k) {
    if (!(stored[k] == config[k])) return false;
  }
  return true;
}

bool RunHistory::Contains(const Configuration& config) const {
  auto it = config_index_.find(ConfigKey(config));
  if (it == config_index_.end()) return false;
  for (uint32_t idx : it->second) {
    if (ConfigEquals(idx, config)) return true;
  }
  return false;
}

size_t RunHistory::IndexEntries(const Configuration& config) const {
  auto it = config_index_.find(ConfigKey(config));
  return it == config_index_.end() ? 0 : it->second.size();
}

size_t RunHistory::HeapBytes() const {
  size_t bytes = configs_.capacity() * sizeof(double) +
                 offsets_.capacity() * sizeof(uint64_t) +
                 rows_.capacity() * sizeof(Row);
  bytes += config_index_.bucket_count() * sizeof(void*);
  for (const auto& [key, bucket] : config_index_) {
    (void)key;
    bytes += sizeof(std::pair<uint64_t, std::vector<uint32_t>>) +
             bucket.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace sparktune
