#include "bo/history.h"

#include <cstring>

namespace sparktune {

int RunHistory::BestFeasibleIndex() const {
  int best = -1;
  double best_obj = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < observations_.size(); ++i) {
    const Observation& o = observations_[i];
    if (o.failed() || !o.feasible) continue;
    if (o.objective < best_obj) {
      best_obj = o.objective;
      best = static_cast<int>(i);
    }
  }
  return best;
}

const Observation* RunHistory::BestFeasible() const {
  int i = BestFeasibleIndex();
  return i < 0 ? nullptr : &observations_[static_cast<size_t>(i)];
}

double RunHistory::BestObjective() const {
  const Observation* o = BestFeasible();
  return o == nullptr ? std::numeric_limits<double>::infinity() : o->objective;
}

uint64_t RunHistory::ConfigKey(const Configuration& config) {
  // FNV-1a over the value bit patterns.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (double v : config.values()) {
    if (v == 0.0) v = 0.0;  // -0.0 == 0.0 must hash identically
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (bits >> shift) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  }
  h ^= config.size();
  return h;
}

bool RunHistory::Contains(const Configuration& config) const {
  auto it = config_index_.find(ConfigKey(config));
  if (it == config_index_.end()) return false;
  for (uint32_t idx : it->second) {
    if (observations_[idx].config == config) return true;
  }
  return false;
}

}  // namespace sparktune
