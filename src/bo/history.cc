#include "bo/history.h"

namespace sparktune {

int RunHistory::BestFeasibleIndex() const {
  int best = -1;
  double best_obj = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < observations_.size(); ++i) {
    const Observation& o = observations_[i];
    if (o.failed || !o.feasible) continue;
    if (o.objective < best_obj) {
      best_obj = o.objective;
      best = static_cast<int>(i);
    }
  }
  return best;
}

const Observation* RunHistory::BestFeasible() const {
  int i = BestFeasibleIndex();
  return i < 0 ? nullptr : &observations_[static_cast<size_t>(i)];
}

double RunHistory::BestObjective() const {
  const Observation* o = BestFeasible();
  return o == nullptr ? std::numeric_limits<double>::infinity() : o->objective;
}

bool RunHistory::Contains(const Configuration& config) const {
  for (const auto& o : observations_) {
    if (o.config == config) return true;
  }
  return false;
}

}  // namespace sparktune
