// Mixed GP kernel over Spark configurations (paper §3.3): Matérn-5/2 on
// numeric parameters, Hamming on categorical/boolean parameters, squared
// exponential on the data-size feature. All features are expected in
// normalized [0,1] coordinates.
#pragma once

#include <cstddef>
#include <vector>

namespace sparktune {

enum class FeatureKind { kNumeric, kCategorical, kDataSize };

// Hyperparameters of the mixed kernel. Lengthscales are shared per feature
// group, which is far more sample-efficient than full ARD at the 10-50
// observation counts online tuning sees.
struct KernelParams {
  double signal_variance = 1.0;
  double length_numeric = 0.5;
  double length_datasize = 0.5;
  double hamming_weight = 1.0;  // lambda in exp(-lambda * mismatch_frac)
  double noise_variance = 1e-3;
};

// Hyperparameter-independent distance statistics of one feature pair. The
// kernel value for ANY KernelParams can be recovered from them, so a GP fit
// computes them once per observation pair and sweeps hyperparameters in
// O(n^2) per grid point instead of O(n^2 d).
struct KernelPairStats {
  double numeric_dist = 0.0;   // sqrt(sum of squared numeric diffs)
  double mismatch_frac = 0.0;  // categorical mismatch fraction
  double mismatches = 0.0;     // categorical mismatch count (exact integer)
  double datasize_d2 = 0.0;    // squared data-size distance
};

class MixedKernel {
 public:
  // Probe set repacked feature-major by kind for EvalRowColumnar: all
  // probe values of one feature sit contiguously (value of the f-th
  // feature of a kind for probe j is at [f * count + j]), so a batch
  // evaluation streams unit-stride columns instead of gathering one
  // strided value per probe row.
  struct ProbeColumns {
    size_t count = 0;                 // number of probes packed
    std::vector<double> numeric;      // numeric_idx_.size() x count
    std::vector<double> categorical;  // categorical_idx_.size() x count
    std::vector<double> datasize;     // datasize_idx_.size() x count
  };

  // Per-probe accumulators for EvalRowColumnar, hoisted out so callers
  // reuse the buffers across rows (one scratch per thread).
  struct ColumnarScratch {
    std::vector<double> num_d2;
    std::vector<double> mismatches;
    std::vector<double> ds_d2;
  };

  explicit MixedKernel(std::vector<FeatureKind> schema,
                       KernelParams params = {});

  const std::vector<FeatureKind>& schema() const { return schema_; }
  const KernelParams& params() const { return params_; }
  void set_params(const KernelParams& p);

  // k(a, b) without the noise term.
  double Eval(const std::vector<double>& a, const std::vector<double>& b) const;

  // One cross-kernel row in a single pass: out[j] = Eval(a, bs[j]) for all
  // j, bit-for-bit. Reads no mutable state, so rows of a cross-kernel
  // matrix can be filled concurrently.
  void EvalRow(const std::vector<double>& a,
               const std::vector<std::vector<double>>& bs, double* out) const;

  // Repack probes feature-major for EvalRowColumnar (a pure copy).
  ProbeColumns PackProbes(const std::vector<std::vector<double>>& bs) const;
  // Columnar EvalRow: with cols == PackProbes(bs), writes exactly
  // EvalRow(a, bs, out) bit-for-bit. The feature loop runs outermost and
  // probes innermost, but each probe still receives its per-kind terms in
  // ascending feature order — the same per-element summation order as the
  // row-at-a-time Stats walk — and the finishing pass replicates
  // EvalStatsCached's op sequence per probe. Reads no mutable kernel
  // state; `scratch` must be exclusive to the caller.
  void EvalRowColumnar(const std::vector<double>& a, const ProbeColumns& cols,
                       ColumnarScratch* scratch, double* out) const;

  // Pairwise statistics of (a, b); Eval(a, b) == EvalStats(Stats(a, b),
  // params()) bit-for-bit.
  KernelPairStats Stats(const std::vector<double>& a,
                        const std::vector<double>& b) const;
  // k(a, b) from cached statistics under explicit hyperparameters. Reads no
  // mutable kernel state, so it is safe to call concurrently.
  double EvalStats(const KernelPairStats& s, const KernelParams& p) const;

  // Matérn-5/2 correlation for scaled distance r >= 0.
  static double Matern52(double r);

 private:
  // k(a, b) under params_, taking the categorical factor from the cached
  // hamming table instead of calling exp. Bit-identical to
  // EvalStats(s, params_): every table entry was computed by that exact
  // expression at a discrete mismatch count.
  double EvalStatsCached(const KernelPairStats& s) const;
  void RebuildHammingTable();

  std::vector<FeatureKind> schema_;
  KernelParams params_;
  int num_numeric_ = 0;
  int num_categorical_ = 0;
  int num_datasize_ = 0;
  // Feature indices by kind: each kind accumulates its own statistic in
  // ascending feature order, exactly like the interleaved schema walk, so
  // the split loops are bit-identical but branch-free.
  std::vector<size_t> numeric_idx_;
  std::vector<size_t> categorical_idx_;
  std::vector<size_t> datasize_idx_;
  // hamming_table_[c] = exp(-hamming_weight * c / num_categorical_): the
  // mismatch count is discrete, so the categorical exp of Eval/EvalRow is a
  // table lookup.
  std::vector<double> hamming_table_;
};

}  // namespace sparktune
