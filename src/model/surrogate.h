// Surrogate model interface: anything that maps a normalized feature vector
// to a Gaussian predictive distribution. Implemented by the GP surrogate
// (model/gp.h), the random-forest surrogate (forest/random_forest.h via an
// adapter in the baselines) and the meta-learning ensemble (meta/).
#pragma once

#include <vector>

#include "common/status.h"

namespace sparktune {

struct Prediction {
  double mean = 0.0;
  double variance = 0.0;
};

class Surrogate {
 public:
  virtual ~Surrogate() = default;

  // Fit on normalized feature rows X (each row the same length) and targets.
  virtual Status Fit(const std::vector<std::vector<double>>& x,
                     const std::vector<double>& y) = 0;

  virtual Prediction Predict(const std::vector<double>& x) const = 0;

  // Batched prediction: out[i] == Predict(xs[i]) bit-for-bit for every
  // implementation. The default loops over Predict; models whose inference
  // amortizes (the GP's triangular solves, tree-ensemble traversals, the
  // meta ensemble's per-base fan-out) override it. Hot paths that score
  // whole candidate pools (acquisition maximization, AGD probes, safety
  // screens) should call this instead of looping Predict.
  virtual std::vector<Prediction> PredictBatch(
      const std::vector<std::vector<double>>& xs) const {
    std::vector<Prediction> out;
    out.reserve(xs.size());
    for (const auto& x : xs) out.push_back(Predict(x));
    return out;
  }

  virtual size_t num_observations() const = 0;
};

}  // namespace sparktune
