#include "model/features.h"

#include <cassert>
#include <cmath>

namespace sparktune {

std::vector<FeatureKind> BuildFeatureSchema(const ConfigSpace& space,
                                            int num_context_features) {
  std::vector<FeatureKind> schema;
  schema.reserve(space.size() + static_cast<size_t>(num_context_features));
  for (const Parameter& p : space.params()) {
    schema.push_back(p.is_numeric() ? FeatureKind::kNumeric
                                    : FeatureKind::kCategorical);
  }
  for (int i = 0; i < num_context_features; ++i) {
    schema.push_back(FeatureKind::kDataSize);
  }
  return schema;
}

std::vector<double> EncodeFeatures(const ConfigSpace& space,
                                   const Configuration& c,
                                   const std::vector<double>& context) {
  std::vector<double> features = space.ToUnit(c);
  features.insert(features.end(), context.begin(), context.end());
  return features;
}

double NormalizeDataSize(double data_size_gb, double reference_gb) {
  assert(reference_gb > 0.0);
  return std::log1p(std::max(0.0, data_size_gb)) / std::log1p(reference_gb);
}

std::vector<double> TimeOfDayContext(double hours_since_epoch) {
  double hour_of_day = std::fmod(hours_since_epoch, 24.0) / 24.0;
  double day_of_week = std::fmod(hours_since_epoch / 24.0, 7.0) / 7.0;
  return {hour_of_day, day_of_week};
}

}  // namespace sparktune
