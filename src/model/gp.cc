#include "model/gp.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/stats.h"

namespace sparktune {

GaussianProcess::GaussianProcess(std::vector<FeatureKind> schema,
                                 GpOptions options)
    : kernel_(std::move(schema)), options_(options) {}

Result<double> GaussianProcess::Refit(const KernelParams& params) {
  kernel_.set_params(params);
  size_t n = x_.size();
  Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double v = kernel_.Eval(x_[i], x_[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  k.AddDiagonal(params.noise_variance + options_.noise_floor);
  auto chol = Cholesky::Factor(k);
  if (!chol.ok()) return chol.status();
  Vector alpha = chol->Solve(y_std_);
  double fit_term = -0.5 * Dot(y_std_, alpha);
  double lml = fit_term - 0.5 * chol->LogDet() -
               0.5 * static_cast<double>(n) *
                   std::log(2.0 * std::numbers::pi);
  chol_.emplace(std::move(*chol));
  alpha_ = std::move(alpha);
  lml_ = lml;
  return lml;
}

Status GaussianProcess::Fit(const std::vector<std::vector<double>>& x,
                            const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("GP needs matching non-empty X and y");
  }
  for (const auto& row : x) {
    if (row.size() != kernel_.schema().size()) {
      return Status::InvalidArgument("GP feature row size mismatch");
    }
  }
  x_ = x;
  y_raw_ = y;
  y_mean_ = Mean(y);
  y_scale_ = Stddev(y);
  if (y_scale_ < 1e-12) y_scale_ = 1.0;
  y_std_.resize(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    y_std_[i] = (y[i] - y_mean_) / y_scale_;
  }

  KernelParams best = kernel_.params();
  auto first = Refit(best);
  if (!first.ok()) return first.status();
  if (!options_.optimize_hypers || x_.size() < 3) return Status::OK();

  double best_lml = *first;
  const std::vector<double> length_grid = {0.08, 0.15, 0.3, 0.5, 0.8,
                                           1.2,  2.0,  3.0};
  const std::vector<double> noise_grid = {1e-6, 1e-4, 1e-3, 1e-2, 5e-2};
  const std::vector<double> hamming_grid = {0.25, 0.5, 1.0, 2.0, 4.0};

  for (int sweep = 0; sweep < options_.hyper_sweeps; ++sweep) {
    // Coordinate 1: numeric lengthscale.
    for (double l : length_grid) {
      KernelParams p = best;
      p.length_numeric = l;
      auto r = Refit(p);
      if (r.ok() && *r > best_lml) {
        best_lml = *r;
        best = p;
      }
    }
    // Coordinate 2: datasize lengthscale (only if present).
    bool has_ds = std::any_of(
        kernel_.schema().begin(), kernel_.schema().end(),
        [](FeatureKind k) { return k == FeatureKind::kDataSize; });
    if (has_ds) {
      for (double l : length_grid) {
        KernelParams p = best;
        p.length_datasize = l;
        auto r = Refit(p);
        if (r.ok() && *r > best_lml) {
          best_lml = *r;
          best = p;
        }
      }
    }
    // Coordinate 3: hamming weight (only if categorical present).
    bool has_cat = std::any_of(
        kernel_.schema().begin(), kernel_.schema().end(),
        [](FeatureKind k) { return k == FeatureKind::kCategorical; });
    if (has_cat) {
      for (double w : hamming_grid) {
        KernelParams p = best;
        p.hamming_weight = w;
        auto r = Refit(p);
        if (r.ok() && *r > best_lml) {
          best_lml = *r;
          best = p;
        }
      }
    }
    // Coordinate 4: noise.
    for (double t : noise_grid) {
      KernelParams p = best;
      p.noise_variance = t;
      auto r = Refit(p);
      if (r.ok() && *r > best_lml) {
        best_lml = *r;
        best = p;
      }
    }
  }
  // Leave the model refit at the best parameters.
  auto final_fit = Refit(best);
  if (!final_fit.ok()) return final_fit.status();
  return Status::OK();
}

Prediction GaussianProcess::Predict(const std::vector<double>& x) const {
  Prediction pred;
  if (!chol_.has_value() || x_.empty()) {
    // Prior.
    pred.mean = y_mean_;
    pred.variance = y_scale_ * y_scale_ * kernel_.params().signal_variance;
    return pred;
  }
  size_t n = x_.size();
  Vector kstar(n);
  for (size_t i = 0; i < n; ++i) kstar[i] = kernel_.Eval(x_[i], x);
  double mean_std = Dot(kstar, alpha_);
  // v = L^-1 k*; var = k** - v'v.
  Vector v = chol_->SolveLower(kstar);
  double kss = kernel_.Eval(x, x) + kernel_.params().noise_variance;
  double var_std = kss - Dot(v, v);
  var_std = std::max(var_std, 1e-12);
  pred.mean = y_mean_ + y_scale_ * mean_std;
  pred.variance = y_scale_ * y_scale_ * var_std;
  return pred;
}

}  // namespace sparktune
