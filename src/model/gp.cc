#include "model/gp.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/stats.h"
#include "common/thread_pool.h"

namespace sparktune {

GaussianProcess::GaussianProcess(std::vector<FeatureKind> schema,
                                 GpOptions options)
    : kernel_(std::move(schema)), options_(options) {}

bool GaussianProcess::SameGramKey(const KernelParams& a,
                                  const KernelParams& b) {
  return a.signal_variance == b.signal_variance &&
         a.length_numeric == b.length_numeric &&
         a.length_datasize == b.length_datasize &&
         a.hamming_weight == b.hamming_weight;
}

Matrix GaussianProcess::BuildGram(const KernelParams& params) const {
  size_t n = x_.size();
  Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double v = kernel_.EvalStats(pair_stats_[i * (i + 1) / 2 + j], params);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

Result<double> GaussianProcess::EvalLml(const KernelParams& params,
                                        const Matrix* gram) const {
  size_t n = x_.size();
  Matrix k = gram != nullptr ? *gram : BuildGram(params);
  k.AddDiagonal(params.noise_variance + options_.noise_floor);
  auto chol = Cholesky::Factor(k, 1e-10, 1e-2, options_.num_threads);
  if (!chol.ok()) return chol.status();
  Vector alpha = chol->Solve(y_std_);
  double fit_term = -0.5 * Dot(y_std_, alpha);
  return fit_term - 0.5 * chol->LogDet() -
         0.5 * static_cast<double>(n) *
             std::log(2.0 * std::numbers::pi);
}

Result<double> GaussianProcess::Refit(const KernelParams& params) {
  kernel_.set_params(params);
  if (!gram_valid_ || !SameGramKey(gram_key_, params)) {
    gram_ = BuildGram(params);
    gram_key_ = params;
    gram_valid_ = true;
  }
  Matrix k = gram_;
  k.AddDiagonal(params.noise_variance + options_.noise_floor);
  auto chol = Cholesky::Factor(k, 1e-10, 1e-2, options_.num_threads);
  if (!chol.ok()) return chol.status();
  Vector alpha = chol->Solve(y_std_);
  double fit_term = -0.5 * Dot(y_std_, alpha);
  double lml = fit_term - 0.5 * chol->LogDet() -
               0.5 * static_cast<double>(x_.size()) *
                   std::log(2.0 * std::numbers::pi);
  chol_.emplace(std::move(*chol));
  alpha_ = std::move(alpha);
  lml_ = lml;
  return lml;
}

Status GaussianProcess::Fit(const std::vector<std::vector<double>>& x,
                            const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("GP needs matching non-empty X and y");
  }
  for (const auto& row : x) {
    if (row.size() != kernel_.schema().size()) {
      return Status::InvalidArgument("GP feature row size mismatch");
    }
  }
  x_ = x;
  y_raw_ = y;
  y_mean_ = Mean(y);
  y_scale_ = Stddev(y);
  if (y_scale_ < 1e-12) y_scale_ = 1.0;
  y_std_.resize(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    y_std_[i] = (y[i] - y_mean_) / y_scale_;
  }

  // Pairwise statistics are hyperparameter-independent: compute them once
  // (in parallel over rows) and every grid refit drops from O(n^2 d) to
  // O(n^2) kernel work.
  size_t n = x_.size();
  pair_stats_.resize(n * (n + 1) / 2);
  ParallelFor(options_.num_threads, n, [&](size_t i) {
    for (size_t j = 0; j <= i; ++j) {
      pair_stats_[i * (i + 1) / 2 + j] = kernel_.Stats(x_[i], x_[j]);
    }
  });
  gram_valid_ = false;

  KernelParams best = kernel_.params();
  auto first = Refit(best);
  if (!first.ok()) return first.status();
  if (!options_.optimize_hypers || x_.size() < 3) return Status::OK();

  double best_lml = *first;
  const std::vector<double> length_grid = {0.08, 0.15, 0.3, 0.5, 0.8,
                                           1.2,  2.0,  3.0};
  const std::vector<double> noise_grid = {1e-6, 1e-4, 1e-3, 1e-2, 5e-2};
  const std::vector<double> hamming_grid = {0.25, 0.5, 1.0, 2.0, 4.0};

  // One coordinate of the descent: refit every grid point on an
  // independent scratch state (parallel), then scan in grid order with the
  // same strict-improvement rule as the sequential loop. Grid points only
  // differ from `best` in the swept coordinate, so mid-loop updates of
  // `best` never change later candidates — the parallel evaluation is
  // bit-identical to the serial sweep at any thread count.
  auto sweep_coordinate = [&](const std::vector<double>& grid,
                              void (*assign)(KernelParams*, double),
                              bool noise_only) {
    std::vector<KernelParams> cand(grid.size(), best);
    for (size_t i = 0; i < grid.size(); ++i) assign(&cand[i], grid[i]);
    // Noise enters only the diagonal: all noise candidates share one Gram
    // matrix instead of re-evaluating the full O(n^2) kernel each.
    Matrix shared;
    if (noise_only) shared = BuildGram(best);
    std::vector<double> lml(grid.size(), 0.0);
    std::vector<char> ok(grid.size(), 0);
    ParallelFor(options_.num_threads, grid.size(), [&](size_t i) {
      auto r = EvalLml(cand[i], noise_only ? &shared : nullptr);
      if (r.ok()) {
        lml[i] = *r;
        ok[i] = 1;
      }
    });
    for (size_t i = 0; i < grid.size(); ++i) {
      if (ok[i] && lml[i] > best_lml) {
        best_lml = lml[i];
        best = cand[i];
      }
    }
  };

  bool has_ds = std::any_of(
      kernel_.schema().begin(), kernel_.schema().end(),
      [](FeatureKind k) { return k == FeatureKind::kDataSize; });
  bool has_cat = std::any_of(
      kernel_.schema().begin(), kernel_.schema().end(),
      [](FeatureKind k) { return k == FeatureKind::kCategorical; });

  for (int sweep = 0; sweep < options_.hyper_sweeps; ++sweep) {
    // Coordinate 1: numeric lengthscale.
    sweep_coordinate(
        length_grid, [](KernelParams* p, double v) { p->length_numeric = v; },
        false);
    // Coordinate 2: datasize lengthscale (only if present).
    if (has_ds) {
      sweep_coordinate(
          length_grid,
          [](KernelParams* p, double v) { p->length_datasize = v; }, false);
    }
    // Coordinate 3: hamming weight (only if categorical present).
    if (has_cat) {
      sweep_coordinate(
          hamming_grid,
          [](KernelParams* p, double v) { p->hamming_weight = v; }, false);
    }
    // Coordinate 4: noise.
    sweep_coordinate(
        noise_grid, [](KernelParams* p, double v) { p->noise_variance = v; },
        true);
  }
  // Leave the model refit at the best parameters.
  auto final_fit = Refit(best);
  if (!final_fit.ok()) return final_fit.status();
  return Status::OK();
}

Prediction GaussianProcess::Predict(const std::vector<double>& x) const {
  Prediction pred;
  if (!chol_.has_value() || x_.empty()) {
    // Prior.
    pred.mean = y_mean_;
    pred.variance = y_scale_ * y_scale_ * kernel_.params().signal_variance;
    return pred;
  }
  size_t n = x_.size();
  Vector kstar(n);
  for (size_t i = 0; i < n; ++i) kstar[i] = kernel_.Eval(x_[i], x);
  double mean_std = Dot(kstar, alpha_);
  // v = L^-1 k*; var = k** - v'v.
  Vector v = chol_->SolveLower(kstar);
  double kss = kernel_.Eval(x, x) + kernel_.params().noise_variance;
  double var_std = kss - Dot(v, v);
  var_std = std::max(var_std, 1e-12);
  pred.mean = y_mean_ + y_scale_ * mean_std;
  pred.variance = y_scale_ * y_scale_ * var_std;
  return pred;
}

std::vector<Prediction> GaussianProcess::PredictBatch(
    const std::vector<std::vector<double>>& xs) const {
  std::vector<Prediction> out(xs.size());
  if (xs.empty()) return out;
  if (!chol_.has_value() || x_.empty()) {
    // Prior.
    for (Prediction& pred : out) {
      pred.mean = y_mean_;
      pred.variance = y_scale_ * y_scale_ * kernel_.params().signal_variance;
    }
    return out;
  }
  const size_t n = x_.size();
  const size_t m = xs.size();
  // Cross-kernel matrix K*: row i holds k(x_i, xs[j]) for every candidate
  // j. Candidates are repacked feature-major once, then each training row
  // streams per-kind columns (EvalRowColumnar == EvalRow bit-for-bit).
  // Rows are chunked so one scratch serves several rows; each output row
  // depends only on its own training point, so chunking cannot change
  // results.
  const MixedKernel::ProbeColumns cols = kernel_.PackProbes(xs);
  Matrix kstar(n, m);
  constexpr size_t kRowChunk = 8;
  const size_t num_chunks = (n + kRowChunk - 1) / kRowChunk;
  ParallelFor(options_.num_threads, num_chunks, [&](size_t c) {
    MixedKernel::ColumnarScratch scratch;
    const size_t i1 = std::min((c + 1) * kRowChunk, n);
    for (size_t i = c * kRowChunk; i < i1; ++i) {
      kernel_.EvalRowColumnar(x_[i], cols, &scratch, kstar.row(i));
    }
  });
  // Means: one gemv alpha^T K*, accumulated over rows in increasing order —
  // per candidate the exact op sequence of Dot(kstar_j, alpha_).
  std::vector<double> mean_std(m, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* ki = kstar.row(i);
    const double ai = alpha_[i];
    for (size_t j = 0; j < m; ++j) mean_std[j] += ki[j] * ai;
  }
  // Variances: one blocked triangular solve L V = K* for all candidates at
  // once, then column squared norms accumulated in row order (== Dot(v, v)).
  Matrix v = chol_->SolveLowerMatrix(kstar, options_.num_threads);
  std::vector<double> vv(m, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* vi = v.row(i);
    for (size_t j = 0; j < m; ++j) vv[j] += vi[j] * vi[j];
  }
  ParallelFor(options_.num_threads, m, [&](size_t j) {
    double kss = kernel_.Eval(xs[j], xs[j]) + kernel_.params().noise_variance;
    double var_std = std::max(kss - vv[j], 1e-12);
    out[j].mean = y_mean_ + y_scale_ * mean_std[j];
    out[j].variance = y_scale_ * y_scale_ * var_std;
  });
  return out;
}

}  // namespace sparktune
