// Feature encoding: Configuration (+ workload context) -> normalized
// surrogate input. Numeric/bool/categorical parameters map to unit-cube
// coordinates; workload context features (data size, or hour-of-day /
// day-of-week when data size is unobservable, §3.3) are appended as
// kDataSize-kind features handled by the SE kernel.
#pragma once

#include <vector>

#include "model/kernel.h"
#include "space/config_space.h"

namespace sparktune {

// Kernel schema for `space` plus `num_context_features` trailing
// data-size/context features. Int/Float -> kNumeric; Categorical/Bool ->
// kCategorical.
std::vector<FeatureKind> BuildFeatureSchema(const ConfigSpace& space,
                                            int num_context_features = 0);

// Encode a configuration (unit-cube per parameter) and append the given
// pre-normalized context features.
std::vector<double> EncodeFeatures(const ConfigSpace& space,
                                   const Configuration& c,
                                   const std::vector<double>& context = {});

// Normalize a data size (GB) into a stable [0, ~1] coordinate:
// log1p(ds) / log1p(reference). Values above reference saturate >1 softly.
double NormalizeDataSize(double data_size_gb, double reference_gb);

// Context encoding for periodic jobs without visible data size: hour of day
// and day of week on the unit circle -> 2 features in [0,1].
std::vector<double> TimeOfDayContext(double hours_since_epoch);

}  // namespace sparktune
