#include "model/kernel.h"

#include <cassert>
#include <cmath>

namespace sparktune {

MixedKernel::MixedKernel(std::vector<FeatureKind> schema, KernelParams params)
    : schema_(std::move(schema)), params_(params) {
  for (FeatureKind k : schema_) {
    switch (k) {
      case FeatureKind::kNumeric: ++num_numeric_; break;
      case FeatureKind::kCategorical: ++num_categorical_; break;
      case FeatureKind::kDataSize: ++num_datasize_; break;
    }
  }
}

double MixedKernel::Matern52(double r) {
  static const double kSqrt5 = std::sqrt(5.0);
  double s = kSqrt5 * r;
  return (1.0 + s + s * s / 3.0) * std::exp(-s);
}

KernelPairStats MixedKernel::Stats(const std::vector<double>& a,
                                   const std::vector<double>& b) const {
  assert(a.size() == schema_.size() && b.size() == schema_.size());
  double num_d2 = 0.0;
  double ds_d2 = 0.0;
  double mismatches = 0.0;
  for (size_t i = 0; i < schema_.size(); ++i) {
    double diff = a[i] - b[i];
    switch (schema_[i]) {
      case FeatureKind::kNumeric:
        num_d2 += diff * diff;
        break;
      case FeatureKind::kCategorical:
        if (std::fabs(diff) > 1e-12) mismatches += 1.0;
        break;
      case FeatureKind::kDataSize:
        ds_d2 += diff * diff;
        break;
    }
  }
  KernelPairStats s;
  s.numeric_dist = std::sqrt(num_d2);
  if (num_categorical_ > 0) {
    s.mismatch_frac = mismatches / static_cast<double>(num_categorical_);
  }
  s.datasize_d2 = ds_d2;
  return s;
}

double MixedKernel::EvalStats(const KernelPairStats& s,
                              const KernelParams& p) const {
  double k = p.signal_variance;
  if (num_numeric_ > 0) {
    double r = s.numeric_dist / p.length_numeric;
    k *= Matern52(r);
  }
  if (num_categorical_ > 0) {
    k *= std::exp(-p.hamming_weight * s.mismatch_frac);
  }
  if (num_datasize_ > 0) {
    double l = p.length_datasize;
    k *= std::exp(-0.5 * s.datasize_d2 / (l * l));
  }
  return k;
}

double MixedKernel::Eval(const std::vector<double>& a,
                         const std::vector<double>& b) const {
  return EvalStats(Stats(a, b), params_);
}

}  // namespace sparktune
