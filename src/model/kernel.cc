#include "model/kernel.h"

#include <cassert>
#include <cmath>

namespace sparktune {

MixedKernel::MixedKernel(std::vector<FeatureKind> schema, KernelParams params)
    : schema_(std::move(schema)), params_(params) {
  for (size_t i = 0; i < schema_.size(); ++i) {
    switch (schema_[i]) {
      case FeatureKind::kNumeric:
        ++num_numeric_;
        numeric_idx_.push_back(i);
        break;
      case FeatureKind::kCategorical:
        ++num_categorical_;
        categorical_idx_.push_back(i);
        break;
      case FeatureKind::kDataSize:
        ++num_datasize_;
        datasize_idx_.push_back(i);
        break;
    }
  }
  RebuildHammingTable();
}

void MixedKernel::set_params(const KernelParams& p) {
  params_ = p;
  RebuildHammingTable();
}

void MixedKernel::RebuildHammingTable() {
  hamming_table_.assign(static_cast<size_t>(num_categorical_) + 1, 1.0);
  for (int c = 0; c <= num_categorical_; ++c) {
    // The exact expression EvalStats applies to a pair with c mismatches:
    // mismatch_frac there is c/num_categorical_ with both operands the same
    // doubles, so the table entry is bit-identical to the exp it replaces.
    double frac = num_categorical_ > 0
                      ? static_cast<double>(c) /
                            static_cast<double>(num_categorical_)
                      : 0.0;
    hamming_table_[static_cast<size_t>(c)] =
        std::exp(-params_.hamming_weight * frac);
  }
}

double MixedKernel::Matern52(double r) {
  static const double kSqrt5 = std::sqrt(5.0);
  double s = kSqrt5 * r;
  return (1.0 + s + s * s / 3.0) * std::exp(-s);
}

KernelPairStats MixedKernel::Stats(const std::vector<double>& a,
                                   const std::vector<double>& b) const {
  assert(a.size() == schema_.size() && b.size() == schema_.size());
  // Each kind accumulates its own statistic, and the per-kind index lists
  // are ascending, so these branch-free loops add terms in the same order
  // as a single interleaved walk of the schema — bit-identical, faster.
  double num_d2 = 0.0;
  for (size_t i : numeric_idx_) {
    double diff = a[i] - b[i];
    num_d2 += diff * diff;
  }
  double mismatches = 0.0;
  for (size_t i : categorical_idx_) {
    if (std::fabs(a[i] - b[i]) > 1e-12) mismatches += 1.0;
  }
  double ds_d2 = 0.0;
  for (size_t i : datasize_idx_) {
    double diff = a[i] - b[i];
    ds_d2 += diff * diff;
  }
  KernelPairStats s;
  s.numeric_dist = std::sqrt(num_d2);
  if (num_categorical_ > 0) {
    s.mismatch_frac = mismatches / static_cast<double>(num_categorical_);
  }
  s.mismatches = mismatches;
  s.datasize_d2 = ds_d2;
  return s;
}

double MixedKernel::EvalStats(const KernelPairStats& s,
                              const KernelParams& p) const {
  double k = p.signal_variance;
  if (num_numeric_ > 0) {
    double r = s.numeric_dist / p.length_numeric;
    k *= Matern52(r);
  }
  if (num_categorical_ > 0) {
    k *= std::exp(-p.hamming_weight * s.mismatch_frac);
  }
  if (num_datasize_ > 0) {
    double l = p.length_datasize;
    k *= std::exp(-0.5 * s.datasize_d2 / (l * l));
  }
  return k;
}

double MixedKernel::EvalStatsCached(const KernelPairStats& s) const {
  double k = params_.signal_variance;
  if (num_numeric_ > 0) {
    double r = s.numeric_dist / params_.length_numeric;
    k *= Matern52(r);
  }
  if (num_categorical_ > 0) {
    // s.mismatches is an exact integer count, so the cast is lossless and
    // the lookup returns the very exp EvalStats would have computed.
    k *= hamming_table_[static_cast<size_t>(s.mismatches)];
  }
  if (num_datasize_ > 0) {
    double l = params_.length_datasize;
    k *= std::exp(-0.5 * s.datasize_d2 / (l * l));
  }
  return k;
}

double MixedKernel::Eval(const std::vector<double>& a,
                         const std::vector<double>& b) const {
  return EvalStatsCached(Stats(a, b));
}

void MixedKernel::EvalRow(const std::vector<double>& a,
                          const std::vector<std::vector<double>>& bs,
                          double* out) const {
  for (size_t j = 0; j < bs.size(); ++j) {
    out[j] = EvalStatsCached(Stats(a, bs[j]));
  }
}

MixedKernel::ProbeColumns MixedKernel::PackProbes(
    const std::vector<std::vector<double>>& bs) const {
  ProbeColumns cols;
  cols.count = bs.size();
  const size_t m = cols.count;
  cols.numeric.resize(numeric_idx_.size() * m);
  cols.categorical.resize(categorical_idx_.size() * m);
  cols.datasize.resize(datasize_idx_.size() * m);
  for (size_t j = 0; j < m; ++j) {
    assert(bs[j].size() == schema_.size());
    const double* b = bs[j].data();
    for (size_t f = 0; f < numeric_idx_.size(); ++f) {
      cols.numeric[f * m + j] = b[numeric_idx_[f]];
    }
    for (size_t f = 0; f < categorical_idx_.size(); ++f) {
      cols.categorical[f * m + j] = b[categorical_idx_[f]];
    }
    for (size_t f = 0; f < datasize_idx_.size(); ++f) {
      cols.datasize[f * m + j] = b[datasize_idx_[f]];
    }
  }
  return cols;
}

void MixedKernel::EvalRowColumnar(const std::vector<double>& a,
                                  const ProbeColumns& cols,
                                  ColumnarScratch* scratch,
                                  double* out) const {
  assert(a.size() == schema_.size());
  const size_t m = cols.count;
  if (m == 0) return;
  // Accumulate each kind's statistic with features outermost and probes
  // innermost: per probe the terms still land in ascending feature order,
  // the exact sequence of the row-at-a-time Stats walk, while the inner
  // loops stream unit-stride columns.
  scratch->num_d2.assign(m, 0.0);
  scratch->mismatches.assign(m, 0.0);
  scratch->ds_d2.assign(m, 0.0);
  double* __restrict num_d2 = scratch->num_d2.data();
  double* __restrict mism = scratch->mismatches.data();
  double* __restrict ds_d2 = scratch->ds_d2.data();
  for (size_t f = 0; f < numeric_idx_.size(); ++f) {
    const double av = a[numeric_idx_[f]];
    const double* __restrict col = cols.numeric.data() + f * m;
    for (size_t j = 0; j < m; ++j) {
      double diff = av - col[j];
      num_d2[j] += diff * diff;
    }
  }
  for (size_t f = 0; f < categorical_idx_.size(); ++f) {
    const double av = a[categorical_idx_[f]];
    const double* __restrict col = cols.categorical.data() + f * m;
    for (size_t j = 0; j < m; ++j) {
      if (std::fabs(av - col[j]) > 1e-12) mism[j] += 1.0;
    }
  }
  for (size_t f = 0; f < datasize_idx_.size(); ++f) {
    const double av = a[datasize_idx_[f]];
    const double* __restrict col = cols.datasize.data() + f * m;
    for (size_t j = 0; j < m; ++j) {
      double diff = av - col[j];
      ds_d2[j] += diff * diff;
    }
  }
  // Finish: per probe, EvalStatsCached's op sequence on the accumulated
  // statistics (numeric_dist = sqrt(num_d2) exactly as Stats builds it).
  for (size_t j = 0; j < m; ++j) {
    double k = params_.signal_variance;
    if (num_numeric_ > 0) {
      double r = std::sqrt(num_d2[j]) / params_.length_numeric;
      k *= Matern52(r);
    }
    if (num_categorical_ > 0) {
      k *= hamming_table_[static_cast<size_t>(mism[j])];
    }
    if (num_datasize_ > 0) {
      double l = params_.length_datasize;
      k *= std::exp(-0.5 * ds_d2[j] / (l * l));
    }
    out[j] = k;
  }
}

}  // namespace sparktune
