// Gaussian process regression with the mixed kernel (paper §3.3, Eq. 2/4).
// Targets are standardized internally; kernel hyperparameters are fit by
// maximizing the log marginal likelihood with two rounds of coordinate
// descent over log-spaced grids (robust at small n, no gradients needed).
#pragma once

#include <optional>
#include <vector>

#include "common/result.h"
#include "linalg/cholesky.h"
#include "model/kernel.h"
#include "model/surrogate.h"

namespace sparktune {

struct GpOptions {
  // Fixed observation noise floor added to the diagonal (tau^2 in Eq. 2).
  double noise_floor = 1e-6;
  // Optimize hyperparameters by log-marginal-likelihood coordinate descent.
  bool optimize_hypers = true;
  // Number of coordinate-descent sweeps.
  int hyper_sweeps = 2;
  // Threads for the hyperparameter grid sweep: 1 = serial (bit-identical to
  // the single-threaded path), 0 = global pool default width, k > 1 = up to
  // k threads. Any setting yields bit-identical fits (grid points are
  // evaluated on independent scratch states; selection stays sequential).
  int num_threads = 1;
};

class GaussianProcess final : public Surrogate {
 public:
  GaussianProcess(std::vector<FeatureKind> schema, GpOptions options = {});

  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<double>& y) override;

  // Predictive mean/variance in the original (unstandardized) target units.
  Prediction Predict(const std::vector<double>& x) const override;

  // Batched posterior: builds the n x m cross-kernel matrix in one pass,
  // runs a single blocked triangular solve for all variances and one gemv
  // against alpha for all means. Bit-identical to per-point Predict;
  // options.num_threads splits the independent candidates over the pool.
  std::vector<Prediction> PredictBatch(
      const std::vector<std::vector<double>>& xs) const override;

  size_t num_observations() const override { return x_.size(); }

  // Log marginal likelihood of the standardized targets under the current
  // hyperparameters; meaningful after Fit.
  double log_marginal_likelihood() const { return lml_; }
  const KernelParams& kernel_params() const { return kernel_.params(); }
  const std::vector<FeatureKind>& schema() const { return kernel_.schema(); }

 private:
  // Refactor the kernel matrix + alpha for given params; returns LML or
  // error. Mutates model state — serial use only.
  Result<double> Refit(const KernelParams& params);

  // Log marginal likelihood of `params` on an independent scratch state:
  // touches no members, so grid points can be evaluated concurrently. When
  // `gram` is non-null it is used as the (noise-free) kernel matrix instead
  // of rebuilding it — noise-only refits share one Gram matrix.
  Result<double> EvalLml(const KernelParams& params, const Matrix* gram) const;

  // Kernel matrix (no noise diagonal) from the cached pairwise statistics.
  Matrix BuildGram(const KernelParams& params) const;

  // True when `a` and `b` produce the same Gram matrix (all hyperparameters
  // equal except the noise variance, which only enters the diagonal).
  static bool SameGramKey(const KernelParams& a, const KernelParams& b);

  MixedKernel kernel_;
  GpOptions options_;

  std::vector<std::vector<double>> x_;
  std::vector<double> y_raw_;
  std::vector<double> y_std_;  // standardized targets
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;

  // Hyperparameter-independent pairwise kernel statistics, packed lower
  // triangle (row i, col j <= i at i*(i+1)/2 + j). Rebuilt per Fit.
  std::vector<KernelPairStats> pair_stats_;
  // Last Gram matrix built by Refit, reused when only the noise changes.
  Matrix gram_;
  KernelParams gram_key_;
  bool gram_valid_ = false;

  std::optional<Cholesky> chol_;
  Vector alpha_;  // (K + tau^2 I)^-1 y_std
  double lml_ = 0.0;
};

}  // namespace sparktune
